"""Tests for the sharded persistent schedule registry."""

import json
import random
import threading

import pytest

from repro.core.scheduler import HARLScheduler
from repro.serving.fingerprint import structural_fingerprint, workload_embedding
from repro.serving.registry import RegistryEntry, ScheduleRegistry, _fit_tile_sizes
from repro.tensor.factors import product
from repro.tensor.workloads import gemm


@pytest.fixture
def registry_root(tmp_path):
    return tmp_path / "registry"


def _tuned_result(dag, tiny_config, seed=0, n_trials=8):
    return HARLScheduler(config=tiny_config, seed=seed).tune(dag, n_trials=n_trials)


def _entry(dag, target, latency, source="test", schedule=None):
    return RegistryEntry(
        fingerprint=structural_fingerprint(dag),
        target=target.name,
        workload=dag.name,
        latency=latency,
        throughput=dag.flops / latency,
        trials=4,
        scheduler="harl",
        schedule=schedule,
        embedding=tuple(workload_embedding(dag).tolist()),
        source=source,
    )


class TestRoundTrip:
    def test_record_and_reload(self, cpu, tiny_config, gemm_dag, registry_root):
        result = _tuned_result(gemm_dag, tiny_config)
        registry = ScheduleRegistry(registry_root)
        assert registry.record_result(gemm_dag, cpu, result, source="test")
        registry.close()

        reloaded = ScheduleRegistry(registry_root)
        entry = reloaded.lookup(gemm_dag, cpu, k=0).entry
        assert entry is not None
        assert entry.latency == pytest.approx(result.best_latency)
        assert entry.source == "test"
        # The stored schedule restores against a *renamed* twin of the DAG.
        twin = gemm(128, 128, 128, name="twin")
        schedules = reloaded.warm_start_schedules(twin, cpu)
        assert schedules and schedules[0].dag.name == "twin"

    def test_only_improvements_are_kept(self, cpu, gemm_dag, registry_root):
        registry = ScheduleRegistry(registry_root)
        assert registry.record(_entry(gemm_dag, cpu, latency=2.0))
        assert not registry.record(_entry(gemm_dag, cpu, latency=3.0))  # worse
        assert registry.record(_entry(gemm_dag, cpu, latency=1.0))
        assert registry.lookup(gemm_dag, cpu, k=0).entry.latency == 1.0
        assert len(registry) == 1

    def test_targets_are_separate_keys(self, cpu, gpu, gemm_dag):
        registry = ScheduleRegistry()
        registry.record(_entry(gemm_dag, cpu, latency=1.0))
        registry.record(_entry(gemm_dag, gpu, latency=0.5))
        assert registry.lookup(gemm_dag, cpu, k=0).entry.latency == 1.0
        assert registry.lookup(gemm_dag, gpu, k=0).entry.latency == 0.5

    def test_rejects_empty_fingerprint(self, cpu, gemm_dag):
        entry = RegistryEntry(
            fingerprint="", target=cpu.name, workload="w", latency=1.0,
            throughput=1.0, trials=1, scheduler="harl", schedule=None,
        )
        with pytest.raises(ValueError):
            ScheduleRegistry().record(entry)

    def test_sharding_spreads_entries(self, cpu, registry_root):
        registry = ScheduleRegistry(registry_root, num_shards=4)
        for m in (32, 64, 128, 256, 512):
            registry.record(_entry(gemm(m, m, m), cpu, latency=1.0 / m))
        registry.close()
        shard_files = list(registry_root.glob("shard-*.jsonl"))
        assert len(shard_files) > 1  # fingerprints spread over shards
        assert len(ScheduleRegistry(registry_root, num_shards=4)) == 5

    def test_reopening_with_different_shard_count_sees_all_entries(
        self, cpu, registry_root
    ):
        registry = ScheduleRegistry(registry_root, num_shards=32)
        for m in (32, 64, 128, 256, 512):
            registry.record(_entry(gemm(m, m, m), cpu, latency=1.0 / m))
        registry.close()
        # Default shard count differs from the writer's: every entry must
        # still load, and compaction must not orphan old shard files.
        reopened = ScheduleRegistry(registry_root)
        assert len(reopened) == 5
        reopened.compact()
        for path in registry_root.glob("shard-*.jsonl"):
            assert int(path.stem.split("-")[1]) < reopened.num_shards
        assert len(ScheduleRegistry(registry_root)) == 5


class TestMergeImportExport:
    def test_merge_takes_best_of_both(self, cpu, gemm_dag):
        a, b = ScheduleRegistry(), ScheduleRegistry()
        other = gemm(256, 256, 256)
        a.record(_entry(gemm_dag, cpu, latency=2.0))
        b.record(_entry(gemm_dag, cpu, latency=1.0))
        b.record(_entry(other, cpu, latency=5.0))
        accepted = a.merge(b)
        assert accepted == 2  # better gemm + new workload
        assert a.lookup(gemm_dag, cpu, k=0).entry.latency == 1.0
        assert len(a) == 2

    def test_export_import_round_trip(self, cpu, gemm_dag, tmp_path):
        registry = ScheduleRegistry()
        registry.record(_entry(gemm_dag, cpu, latency=1.5))
        exported = registry.export_file(tmp_path / "export.jsonl")

        fresh = ScheduleRegistry()
        assert fresh.import_file(exported, source="import:test") == 1
        entry = fresh.lookup(gemm_dag, cpu, k=0).entry
        assert entry.latency == 1.5
        assert entry.source == "import:test"

    def test_import_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ScheduleRegistry().import_file(tmp_path / "absent.jsonl")


class TestConcurrentWriters:
    @staticmethod
    def _synthetic(key: int, latency: float) -> RegistryEntry:
        return RegistryEntry(
            fingerprint=f"stress-{key:02d}",
            target="sim-cpu",
            workload=f"workload_{key}",
            latency=float(latency),
            throughput=1.0 / float(latency),
            trials=4,
            scheduler="harl",
            schedule={"tile": key},
            embedding=(float(key), 1.0),
            source="stress",
        )

    def test_multi_writer_stress_keeps_record_atomic(self, registry_root):
        """Racing writers never tear the absorb/append pair of record().

        Pre-fix, a thread could lose the _best check-then-append race: two
        writers both pass the improvement check, both append, and the
        in-memory best diverges from what a reload computes from the shards.
        """
        registry = ScheduleRegistry(registry_root, num_shards=4)
        writers, keys, steps = 8, 6, 40
        barrier = threading.Barrier(writers)
        errors = []

        def writer(index):
            rng = random.Random(index)
            barrier.wait()
            try:
                for step in range(steps):
                    key = rng.randrange(keys)
                    # Descending floor per key so improvements keep landing
                    # throughout the race, from every thread.
                    latency = 10.0 - step / steps * 5.0 + rng.random()
                    registry.record(self._synthetic(key, latency))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        in_memory = {e.key: e.latency for e in registry.entries()}
        assert len(in_memory) == keys
        registry.close()

        # Every appended line must be intact JSON, monotonically improving
        # per key (an append only happens for an accepted improvement), and
        # the reload's best map must equal the in-memory one.
        seen_best = {}
        for shard in sorted(registry_root.glob("shard-*.jsonl")):
            for line in shard.read_text().splitlines():
                entry = json.loads(line)  # raises on a torn/interleaved line
                key = (entry["fingerprint"], entry["target"])
                assert entry["latency"] < seen_best.get(key, float("inf"))
                seen_best[key] = entry["latency"]
        reloaded = ScheduleRegistry(registry_root, num_shards=4)
        assert {e.key: e.latency for e in reloaded.entries()} == in_memory
        assert reloaded.skipped_lines == 0


class TestCorruptionAndCompaction:
    def _write_garbage(self, registry_root, cpu, gemm_dag):
        registry = ScheduleRegistry(registry_root, num_shards=1)
        registry.record(_entry(gemm_dag, cpu, latency=2.0))
        registry.record(_entry(gemm_dag, cpu, latency=1.0))  # supersedes
        registry.close()
        shard = registry_root / "shard-00.jsonl"
        with shard.open("a") as fh:
            fh.write("{broken json\n")
            fh.write(json.dumps({"fingerprint": "x"}) + "\n")  # missing fields
        return shard

    def test_corrupted_lines_skipped(self, registry_root, cpu, gemm_dag):
        self._write_garbage(registry_root, cpu, gemm_dag)
        registry = ScheduleRegistry(registry_root, num_shards=1)
        assert len(registry) == 1
        assert registry.skipped_lines == 2
        assert registry.lookup(gemm_dag, cpu, k=0).entry.latency == 1.0

    def test_strict_mode_raises(self, registry_root, cpu, gemm_dag):
        self._write_garbage(registry_root, cpu, gemm_dag)
        with pytest.raises(ValueError):
            ScheduleRegistry(registry_root, num_shards=1, strict=True)

    def test_compact_drops_stale_and_corrupt_lines(self, registry_root, cpu, gemm_dag):
        shard = self._write_garbage(registry_root, cpu, gemm_dag)
        registry = ScheduleRegistry(registry_root, num_shards=1)
        removed = registry.compact()
        assert removed == 1  # the superseded latency=2.0 line
        assert shard.read_text().count("\n") == 1  # only the best entry remains
        reloaded = ScheduleRegistry(registry_root, num_shards=1)
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 0
        assert reloaded.lookup(gemm_dag, cpu, k=0).entry.latency == 1.0

    def test_stats(self, registry_root, cpu, gemm_dag):
        self._write_garbage(registry_root, cpu, gemm_dag)
        stats = ScheduleRegistry(registry_root, num_shards=1).stats()
        assert stats["entries"] == 1
        assert stats["skipped_lines"] == 2
        assert stats["stale_lines"] == 1
        assert stats["targets"] == [cpu.name]


class TestNearestNeighbour:
    def test_nearest_prefers_same_operator_family(self, cpu, tiny_config):
        registry = ScheduleRegistry()
        near = gemm(256, 128, 128)
        import repro.tensor.workloads as wl

        far = wl.conv2d(14, 14, 32, 32, 3, 1, 1)
        registry.record(_entry(near, cpu, latency=1.0))
        registry.record(_entry(far, cpu, latency=1.0))
        query = gemm(128, 128, 128)
        neighbors = registry.lookup(query, cpu, k=2).neighbors
        assert [e.workload for _d, e in neighbors] == [near.name, far.name]

    def test_nearest_excludes_exact_fingerprint(self, cpu, gemm_dag):
        registry = ScheduleRegistry()
        registry.record(_entry(gemm_dag, cpu, latency=1.0))
        assert registry.lookup(gemm(128, 128, 128, name="twin"), cpu, k=1).neighbors == ()

    def test_transfer_adapts_tile_sizes_to_new_extents(self, cpu, tiny_config):
        donor = gemm(128, 128, 128)
        result = _tuned_result(donor, tiny_config)
        registry = ScheduleRegistry()
        registry.record_result(donor, cpu, result, source="donor")

        recipient = gemm(96, 96, 96)  # different extents, same family
        schedules = registry.warm_start_schedules(recipient, cpu)
        assert schedules
        for schedule in schedules:
            assert schedule.dag.name == recipient.name
            # valid factorizations of the *new* extents
            for sizes, (_n, _k, extent, _l) in zip(
                schedule.tile_sizes, schedule.sketch.tiled_iters
            ):
                assert product(sizes) == extent


class TestTileFitting:
    @pytest.mark.parametrize("extent,levels", [(96, 4), (7, 2), (128, 4), (60, 3), (1, 3)])
    def test_fit_preserves_product(self, extent, levels):
        fitted = _fit_tile_sizes(extent, levels, [4, 2, 8, 2])
        assert len(fitted) == levels
        assert product(fitted) == extent

    def test_fit_follows_reference_shape(self):
        # Reference concentrates size on the innermost slot; the fit should too.
        fitted = _fit_tile_sizes(64, 3, [1, 1, 64])
        assert fitted == [1, 1, 64]
