"""Property tests for the canonical structural workload fingerprint."""

import numpy as np
import pytest

from repro.serving.fingerprint import (
    EMBEDDING_SIZE,
    canonical_structure,
    embedding_distance,
    structural_fingerprint,
    workload_embedding,
)
from repro.tensor.dag import ComputeDAG, Iterator, Stage
from repro.tensor.workloads import batch_gemm, conv1d, conv2d, gemm, gemm_tanh, softmax


def _relabel(dag: ComputeDAG, suffix: str = "_x", reverse_producers: bool = False,
             reverse_inputs: bool = False) -> ComputeDAG:
    """Rename every stage/iterator; optionally permute producers and inputs."""
    def rebuild(stage: Stage) -> Stage:
        producers = tuple(p + suffix for p in stage.producers)
        if reverse_producers:
            producers = tuple(reversed(producers))
        return Stage(
            name=stage.name + suffix,
            iters=tuple(
                Iterator(it.name + "_r", it.extent, it.kind) for it in stage.iters
            ),
            kind=stage.kind,
            producers=producers,
            flops_per_element=stage.flops_per_element,
        )

    stages = [rebuild(s) for s in dag.stages]
    if reverse_inputs:
        inputs = [s for s in stages if s.kind == "input"]
        rest = [s for s in stages if s.kind != "input"]
        stages = list(reversed(inputs)) + rest
    return ComputeDAG(
        name="relabelled",
        stages=stages,
        main_stage_name=dag.main_stage_name + suffix,
        input_bytes=dag.input_bytes,
        output_bytes=dag.output_bytes,
        tags={},
    )


WORKLOADS = [
    gemm(128, 128, 128),
    gemm(128, 256, 512),
    batch_gemm(12, 128, 64, 128),
    conv1d(256, 64, 128, 3, 2, 1),
    conv2d(14, 14, 32, 32, 3, 1, 1),
    softmax(256, 128),
    gemm_tanh(128, 768, 768),
]


class TestInvariance:
    @pytest.mark.parametrize("dag", WORKLOADS, ids=lambda d: d.name)
    def test_renaming_preserves_fingerprint(self, dag):
        assert structural_fingerprint(_relabel(dag)) == structural_fingerprint(dag)

    @pytest.mark.parametrize("dag", WORKLOADS, ids=lambda d: d.name)
    def test_producer_permutation_preserves_fingerprint(self, dag):
        permuted = _relabel(dag, reverse_producers=True, reverse_inputs=True)
        assert structural_fingerprint(permuted) == structural_fingerprint(dag)

    @pytest.mark.parametrize("dag", WORKLOADS, ids=lambda d: d.name)
    def test_display_name_and_tags_ignored(self, dag):
        clone = ComputeDAG(
            name="something_else",
            stages=list(dag.stages),
            main_stage_name=dag.main_stage_name,
            input_bytes=dag.input_bytes,
            output_bytes=dag.output_bytes,
            tags={"completely": "different"},
        )
        assert structural_fingerprint(clone) == structural_fingerprint(dag)

    def test_workload_key_still_name_sensitive(self):
        # The human-readable key intentionally keeps names (display use).
        a, b = gemm(128, 128, 128), gemm(128, 128, 128, name="renamed")
        assert a.workload_key() != b.workload_key()
        assert structural_fingerprint(a) == structural_fingerprint(b)


class TestSensitivity:
    def test_extent_change_alters_fingerprint(self):
        assert structural_fingerprint(gemm(128, 128, 128)) != structural_fingerprint(
            gemm(128, 128, 256)
        )

    def test_iterator_kind_change_alters_fingerprint(self):
        base = gemm(128, 128, 128, bias=False)
        flipped_stages = []
        for stage in base.stages:
            if stage.name == "matmul":
                flipped_stages.append(
                    Stage(
                        name=stage.name,
                        iters=tuple(
                            Iterator(it.name, it.extent, "spatial") for it in stage.iters
                        ),
                        kind=stage.kind,
                        producers=stage.producers,
                        flops_per_element=stage.flops_per_element,
                    )
                )
            else:
                flipped_stages.append(stage)
        flipped = ComputeDAG(
            name=base.name,
            stages=flipped_stages,
            main_stage_name=base.main_stage_name,
            input_bytes=base.input_bytes,
            output_bytes=base.output_bytes,
        )
        assert structural_fingerprint(flipped) != structural_fingerprint(base)

    def test_stage_kind_and_work_alter_fingerprint(self):
        with_bias = gemm(128, 128, 128, bias=True)
        without_bias = gemm(128, 128, 128, bias=False)
        assert structural_fingerprint(with_bias) != structural_fingerprint(without_bias)

    def test_distinct_operators_distinct_fingerprints(self):
        prints = {structural_fingerprint(dag) for dag in WORKLOADS}
        assert len(prints) == len(WORKLOADS)

    def test_canonical_structure_is_deterministic(self):
        dag = conv2d(14, 14, 32, 32, 3, 1, 1)
        assert canonical_structure(dag) == canonical_structure(
            conv2d(14, 14, 32, 32, 3, 1, 1)
        )


class TestEmbedding:
    def test_shape_and_rename_invariance(self):
        dag = gemm(128, 256, 512)
        emb = workload_embedding(dag)
        assert emb.shape == (EMBEDDING_SIZE,)
        assert np.allclose(emb, workload_embedding(_relabel(dag)))

    def test_similar_shapes_are_closer_than_other_operators(self):
        small, big = gemm(128, 128, 128), gemm(256, 128, 128)
        conv = conv2d(14, 14, 32, 32, 3, 1, 1)
        near = embedding_distance(workload_embedding(small), workload_embedding(big))
        far = embedding_distance(workload_embedding(small), workload_embedding(conv))
        assert near < far

    def test_distance_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            embedding_distance(np.zeros(3), np.zeros(4))
