"""Shard-format v2 behaviour: lazy indexed loads, sidecars, and the LRU.

The contract under test is the one the million-entry redesign rests on:

* a v2 (manifest + sidecar) registry indexes **no** shard at construction
  and at most the key's home shard for an exact ``lookup(..., k=0)``;
* stale, corrupt or missing sidecars, foreign (v1) layouts, and appended
  tails all degrade transparently to a scan with identical answers;
* for *any* interleaving of append / compact / crash (driven by the faults
  harness), a lazy v2 reload returns exactly the entries a line-by-line
  parse of the surviving shard files says it must;
* the deprecated ``get()`` / ``nearest()`` / ``cross_target_candidates()``
  wrappers agree with ``lookup()``.
"""

import json
import warnings

import numpy as np
import pytest

from repro.faults.plan import FaultPlan, InjectedCrash, inject
from repro.serving.fingerprint import EMBEDDING_SIZE, workload_embedding
from repro.serving.registry import RegistryEntry, ScheduleRegistry
from repro.tensor.workloads import gemm

TARGETS = ("sim-cpu", "sim-gpu")


def _entry(i: int, latency: float, target: str = "sim-cpu") -> RegistryEntry:
    return RegistryEntry(
        fingerprint=f"fp-{i:03d}",
        target=target,
        workload=f"workload_{i}",
        latency=float(latency),
        throughput=1.0 / float(latency),
        trials=8,
        scheduler="harl",
        schedule={"stub": i},
        embedding=(float(i % 7), float(i % 5)) + (1.0,) * (EMBEDDING_SIZE - 2),
        source="test",
    )


def _quiet(root, num_shards=4, **kwargs) -> ScheduleRegistry:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return ScheduleRegistry(root, num_shards=num_shards, **kwargs)


def _oracle(root) -> dict:
    """Best (fingerprint, target) → latency from a raw parse of every shard.

    Mirrors the absorb rule: the first line of a key wins ties, later lines
    replace it only on strict improvement (latencies in these tests are
    drawn continuously, so ties never decide a comparison).
    """
    best: dict = {}
    for path in sorted(root.glob("shard-*.jsonl")):
        for line in path.read_text(encoding="utf-8").splitlines():
            try:
                data = json.loads(line)
                entry = RegistryEntry.from_dict(data)
            except (ValueError, KeyError, TypeError):
                continue
            held = best.get(entry.key)
            if held is None or entry.latency < held:
                best[entry.key] = entry.latency
    return best


class TestLazyLoading:
    def test_construct_touches_no_shard(self, tmp_path):
        registry = ScheduleRegistry(tmp_path, num_shards=4)
        for i in range(12):
            registry.record(_entry(i, 1.0 + i / 100))
        registry.close()

        lazy = ScheduleRegistry(tmp_path, num_shards=4)
        assert lazy.indexed_shards == 0
        assert lazy.lookup("fp-003", "sim-cpu", k=0).entry is not None
        assert lazy.indexed_shards == 1

    def test_similarity_tier_indexes_everything(self, tmp_path):
        registry = ScheduleRegistry(tmp_path, num_shards=4)
        for i in range(12):
            registry.record(_entry(i, 1.0))
        registry.close()

        lazy = ScheduleRegistry(tmp_path, num_shards=4)
        result = lazy.lookup(gemm(64, 64, 64), "sim-cpu", k=3)
        assert len(result.neighbors) == 3
        assert lazy.indexed_shards == len(list(tmp_path.glob("shard-*.jsonl")))

    def test_stale_sidecar_tail_is_absorbed(self, tmp_path):
        registry = ScheduleRegistry(tmp_path, num_shards=1)
        registry.record(_entry(0, 1.0))
        registry.close()
        # Append behind the sidecar's back (a v2 reader with the old sidecar
        # must scan the appended tail, not miss it).
        better = _entry(0, 0.5)
        shard = tmp_path / "shard-00.jsonl"
        with shard.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(better.to_dict()) + "\n")

        reloaded = ScheduleRegistry(tmp_path, num_shards=1)
        assert reloaded.lookup("fp-000", "sim-cpu", k=0).entry.latency == 0.5

    def test_corrupt_sidecar_falls_back_to_scan(self, tmp_path):
        registry = ScheduleRegistry(tmp_path, num_shards=1)
        for i in range(5):
            registry.record(_entry(i, 1.0 + i))
        registry.close()
        sidecar = tmp_path / "shard-00.idx.json"
        assert sidecar.exists()
        sidecar.write_text("{not json", encoding="utf-8")

        reloaded = _quiet(tmp_path, num_shards=1)
        assert {e.key for e in reloaded.entries()} == set(_oracle(tmp_path))

    def test_v1_layout_reads_transparently(self, tmp_path):
        # A pre-manifest directory: raw JSONL shards only.
        registry = ScheduleRegistry(tmp_path, num_shards=2)
        for i in range(8):
            registry.record(_entry(i, 1.0 + i / 10))
        registry.close()
        (tmp_path / "registry.json").unlink()
        for sidecar in tmp_path.glob("shard-*.idx.json"):
            sidecar.unlink()

        v1 = ScheduleRegistry(tmp_path, num_shards=2)
        assert v1.lookup("fp-004", "sim-cpu", k=0).entry is not None
        assert {e.key: e.latency for e in v1.entries()} == _oracle(tmp_path)

    def test_read_handle_lru_is_bounded(self, tmp_path):
        registry = ScheduleRegistry(tmp_path, num_shards=8)
        for i in range(32):
            registry.record(_entry(i, 1.0 + i / 100))
        registry.close()

        lazy = ScheduleRegistry(tmp_path, num_shards=8, max_open_shards=2)
        for i in range(32):
            entry = lazy.lookup(f"fp-{i:03d}", "sim-cpu", k=0).entry
            assert entry is not None and entry.workload == f"workload_{i}"
        assert lazy.stats()["open_read_handles"] <= 2


class TestLookupResult:
    def test_source_tags_and_truthiness(self, tmp_path):
        registry = ScheduleRegistry(tmp_path, num_shards=2)
        dag = gemm(64, 64, 64)
        assert not registry.lookup(dag, "sim-cpu")  # miss on empty store
        registry.record(
            RegistryEntry(
                fingerprint="other",
                target="sim-cpu",
                workload="other",
                latency=1.0,
                throughput=1.0,
                trials=4,
                scheduler="harl",
                schedule={"stub": 1},
                embedding=tuple(workload_embedding(gemm(96, 96, 96)).tolist()),
            )
        )
        neighbour_hit = registry.lookup(dag, "sim-cpu", k=1)
        assert neighbour_hit.source == "neighbor" and bool(neighbour_hit)
        assert neighbour_hit.best is neighbour_hit.neighbors[0][1]


class TestPropertyLazyEqualsEager:
    """Lazy v2 loads equal a raw-parse oracle under faulted interleavings."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_interleaved_append_compact_crash(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        root = tmp_path / f"prop-{seed}"
        registry = ScheduleRegistry(root, num_shards=4)
        for step in range(60):
            op = int(rng.integers(0, 12))
            i = int(rng.integers(0, 16))
            latency = float(rng.uniform(0.1, 2.0))
            target = TARGETS[int(rng.integers(0, len(TARGETS)))]
            if op < 8:
                registry.record(_entry(i, latency, target))
            elif op < 9:
                registry.compact()
            elif op < 10:
                # A fresh key is always an improvement, so the append (and
                # its armed fault) is guaranteed to run.
                plan = FaultPlan.single(
                    "registry.append", "torn_write", seed=seed * 100 + step
                )
                with inject(plan):
                    with pytest.raises(InjectedCrash):
                        registry.record(_entry(100 + step, latency, target))
                registry = _quiet(root)  # crash: reload from surviving files
            else:
                kind, match = (
                    ("torn_write", "mid_write")
                    if op == 10
                    else ("crash", "before_replace")
                )
                plan = FaultPlan.single(
                    "registry.compact", kind, match=match, seed=seed * 100 + step
                )
                with inject(plan):
                    try:
                        registry.compact()
                    except InjectedCrash:
                        registry = _quiet(root)
        registry.close()

        expected = _oracle(root)
        assert expected, "property run built an empty registry"

        # Eager reference: a full entries() materialisation.
        eager = _quiet(root)
        assert {e.key: e.latency for e in eager.entries()} == expected
        eager.close()

        # Lazy v2: answer every key through the exact tier of lookup().
        lazy = _quiet(root)
        for (fingerprint, target), latency in expected.items():
            found = lazy.lookup(fingerprint, target, k=0).entry
            assert found is not None and found.latency == latency
        assert len(lazy) == len(expected)
        lazy.close()


class TestDeprecatedWrappers:
    def test_get_agrees_with_lookup(self, tmp_path):
        registry = ScheduleRegistry(tmp_path, num_shards=2)
        registry.record(_entry(3, 0.75))
        with pytest.deprecated_call():
            via_get = registry.get("fp-003", "sim-cpu")
        assert via_get == registry.lookup("fp-003", "sim-cpu", k=0).entry
        with pytest.deprecated_call():
            assert registry.get("fp-999", "sim-cpu") is None

    def test_nearest_agrees_with_lookup(self):
        registry = ScheduleRegistry()
        for n in (96, 128, 256):
            dag = gemm(n, n, n)
            registry.record(
                RegistryEntry(
                    fingerprint=f"gemm-{n}",
                    target="sim-cpu",
                    workload=dag.name,
                    latency=1.0,
                    throughput=1.0,
                    trials=4,
                    scheduler="harl",
                    schedule={"stub": n},
                    embedding=tuple(workload_embedding(dag).tolist()),
                )
            )
        query = gemm(112, 112, 112)
        with pytest.deprecated_call():
            via_nearest = registry.nearest(query, "sim-cpu", k=2)
        assert via_nearest == list(registry.lookup(query, "sim-cpu", k=2).neighbors)

    def test_cross_target_agrees_with_lookup(self):
        from repro.hardware.catalog import default_catalog

        catalog = default_catalog()
        dest = catalog.get("epyc-7543")
        donor = catalog.get("xeon-6226r")
        registry = ScheduleRegistry()
        dag = gemm(64, 64, 64)
        registry.record(
            RegistryEntry(
                fingerprint="fp-donor",
                target=donor.name,
                workload=dag.name,
                latency=1.0,
                throughput=1.0,
                trials=4,
                scheduler="harl",
                schedule={"stub": 0},
                embedding=tuple(workload_embedding(dag).tolist()),
            )
        )
        with pytest.deprecated_call():
            via_old = registry.cross_target_candidates(dag, dest, catalog=catalog)
        via_lookup = registry.lookup(
            dag, dest, cross_target=True, catalog=catalog
        ).transfers
        assert via_old == list(via_lookup)
