"""Golden-stability test for structural workload fingerprints.

Persisted schedule registries and record logs key everything on
:func:`~repro.serving.fingerprint.structural_fingerprint`.  A refactor that
silently changes the canonical encoding would orphan every persisted entry
(lookups miss, warm starts go cold) without failing any behavioural test —
so the expected digests of a representative workload set are committed in
``tests/data/golden_fingerprints.json`` and any drift fails loudly here.

If you *intentionally* changed the canonical encoding, regenerate the golden
file (see "the golden-fingerprint workflow" in README.md) and call out in
the PR that persisted registries / record logs are invalidated.
"""

import json
from pathlib import Path

import pytest

from repro.serving.fingerprint import structural_fingerprint
from repro.tensor import workloads as w

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_fingerprints.json"


def golden_workloads():
    """The committed workload set: one representative per factory, plus the
    edge variants (no-bias epilogue, depthwise grouping, batched shapes) whose
    structure most easily shifts under refactors."""
    return {
        "gemm_512x512x512": w.gemm(512, 512, 512),
        "gemm_128x3072x768_b4": w.gemm(128, 3072, 768, batch=4),
        "gemm_no_bias_64": w.gemm(64, 64, 64, bias=False),
        "batch_gemm_12x128x64x128": w.batch_gemm(12, 128, 64, 128),
        "gemm_tanh_128x768x768": w.gemm_tanh(128, 768, 768),
        "conv1d_256x64x128_k3s2p1": w.conv1d(256, 64, 128, 3, 2, 1),
        "conv2d_56x56x64x64_k1s1p0": w.conv2d(56, 56, 64, 64, 1, 1, 0),
        "conv2d_depthwise_14x14x32_k3s1p1": w.conv2d(14, 14, 32, 32, 3, 1, 1, groups=32),
        "conv3d_16x56x56x64x64_k1s1p0": w.conv3d(16, 56, 56, 64, 64, 1, 1, 0),
        "conv2d_transpose_8x8x256x128_k4s2p1": w.conv2d_transpose(8, 8, 256, 128, 4, 2, 1),
        "softmax_384x384_b8": w.softmax(384, 384, batch=8),
        "elementwise_128x768_ops3": w.elementwise((128, 768), num_ops=3),
    }


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestGoldenFingerprints:
    def test_golden_file_covers_every_workload(self, golden):
        assert sorted(golden) == sorted(golden_workloads())

    @pytest.mark.parametrize("name", sorted(golden_workloads()))
    def test_fingerprint_matches_golden(self, golden, name):
        dag = golden_workloads()[name]
        current = structural_fingerprint(dag)
        assert current == golden[name], (
            f"structural fingerprint of {name!r} drifted from the committed "
            f"golden value — persisted registries and record logs keyed on the "
            f"old fingerprint would be orphaned. If the encoding change is "
            f"intentional, regenerate tests/data/golden_fingerprints.json "
            f"(see README.md) and flag the migration in your PR."
        )

    def test_goldens_are_valid_sha256_hex(self, golden):
        for name, digest in golden.items():
            assert len(digest) == 64 and int(digest, 16) >= 0, name

    def test_goldens_are_pairwise_distinct(self, golden):
        assert len(set(golden.values())) == len(golden)
