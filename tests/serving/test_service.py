"""Tests for the multi-tenant tuning service: dedup, coalescing, warm starts.

The acceptance-critical regressions live here:

* N concurrent structurally-identical requests produce exactly ONE tuning
  job (the rest coalesce onto it or hit the registry),
* a warm-started run reaches the cold run's best latency in at most half
  the cold run's measurement trials.
"""

import threading
import time

import pytest

from repro.core.scheduler import HARLScheduler
from repro.baselines.ansor import AnsorConfig, AnsorScheduler
from repro.hardware.measurer import Measurer
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import (
    SOURCE_COALESCED,
    SOURCE_REGISTRY,
    SOURCE_SCHEDULED,
    TuningRequest,
    TuningService,
)
from repro.tensor.workloads import conv1d, gemm


def _renamed_gemms(n, m=64):
    """Structurally identical GEMMs whose names all differ."""
    return [gemm(m, m, m, name=f"client_{i}_gemm") for i in range(n)]


@pytest.fixture
def service(tiny_config):
    return TuningService(registry=ScheduleRegistry(), config=tiny_config, seed=0)


class TestCoalescing:
    def test_identical_requests_share_one_job(self, service):
        requests = [
            TuningRequest(dag=dag, n_trials=8, tenant=f"tenant-{i}")
            for i, dag in enumerate(_renamed_gemms(4))
        ]
        handles = service.process(requests)

        assert service.jobs_created == 1
        assert service.coalesced_requests == 3
        assert [h.source for h in handles] == [SOURCE_SCHEDULED] + [SOURCE_COALESCED] * 3
        assert all(h.done for h in handles)
        # Everyone gets the *same* result object: one tuning job served all.
        assert len({id(h.result) for h in handles}) == 1
        assert handles[0].result.trials_used >= 8

    def test_threaded_submissions_still_coalesce(self, service):
        handles = [None] * 6
        barrier = threading.Barrier(6)

        def client(i, dag):
            barrier.wait()
            handles[i] = service.submit(TuningRequest(dag=dag, n_trials=8))

        threads = [
            threading.Thread(target=client, args=(i, dag))
            for i, dag in enumerate(_renamed_gemms(6))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.run()

        assert service.jobs_created == 1
        assert all(h is not None and h.done for h in handles)
        assert sum(h.source == SOURCE_SCHEDULED for h in handles) == 1

    def test_distinct_workloads_get_distinct_jobs(self, service):
        handles = service.process([
            TuningRequest(dag=gemm(64, 64, 64), n_trials=8),
            TuningRequest(dag=conv1d(64, 16, 32, 3, 1, 1), n_trials=8),
        ])
        assert service.jobs_created == 2
        assert all(h.done for h in handles)
        assert handles[0].result.workload != handles[1].result.workload

    def test_coalesced_budget_extends_to_largest_request(self, service):
        dags = _renamed_gemms(2)
        h_small = service.submit(TuningRequest(dag=dags[0], n_trials=4))
        service.submit(TuningRequest(dag=dags[1], n_trials=12))
        service.run()
        assert h_small.result.trials_used >= 12


class TestRegistryFastPath:
    def test_second_request_is_an_o1_registry_hit(self, service):
        first = service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=8)])[0]
        assert first.source == SOURCE_SCHEDULED

        hit = service.submit(
            TuningRequest(dag=gemm(64, 64, 64, name="renamed"), n_trials=8)
        )
        assert hit.source == SOURCE_REGISTRY
        assert hit.done  # answered at submit time, no run() needed
        assert hit.result.trials_used == 0
        assert hit.result.best_latency == pytest.approx(first.result.best_latency)
        assert hit.result.best_schedule is not None
        assert service.jobs_created == 1  # no new tuning work

    def test_force_tune_bypasses_registry(self, service):
        service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=8)])
        forced = service.submit(
            TuningRequest(dag=gemm(64, 64, 64, name="fresh"), n_trials=8,
                          force_tune=True)
        )
        assert forced.source == SOURCE_SCHEDULED
        service.run()
        assert forced.result.trials_used >= 8

    def test_force_tune_resubmission_does_not_duplicate_allocation(self, service):
        # Finish a job, then force_tune the same workload: the allocation
        # FIFO must hold the recreated key exactly once.
        service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=4)])
        assert service._order == []
        forced = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=4,
                                              force_tune=True))
        assert len(service._order) == 1
        service.run()
        assert forced.done
        assert service._order == []

    def test_malformed_registry_schedule_still_answers(self, service):
        from dataclasses import replace

        first = service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=8)])[0]
        key = (first.fingerprint, service.target.name)
        entry = service.registry._best[key]
        # Simulate an older/torn schedule payload: parseable but incomplete.
        service.registry._best[key] = replace(entry, schedule={})

        hit = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=8))
        assert hit.done and hit.source == SOURCE_REGISTRY
        assert hit.result.best_latency == pytest.approx(first.result.best_latency)
        assert hit.result.best_schedule is None  # degraded gracefully, no crash
        # Warm starts tolerate it too.
        assert service.registry.warm_start_schedules(
            gemm(64, 64, 64), service.target
        ) == []

    def test_completed_jobs_populate_registry(self, service):
        service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=8,
                                       tenant="alice")])
        entry = service.registry.lookup(gemm(64, 64, 64, name="other"),
                                        service.target, k=0).entry
        assert entry is not None
        assert "alice" in entry.source


class TestBudgetAllocation:
    def test_all_jobs_complete_within_their_budgets(self, tiny_config):
        service = TuningService(registry=ScheduleRegistry(), config=tiny_config,
                                seed=0)
        handles = service.process([
            TuningRequest(dag=gemm(64, 64, 64), n_trials=10),
            TuningRequest(dag=gemm(128, 64, 64), n_trials=6),
            TuningRequest(dag=conv1d(64, 16, 32, 3, 1, 1), n_trials=6),
        ])
        assert service.jobs_created == 3
        for handle in handles:
            assert handle.done
            assert handle.result.trials_used >= handle.request.n_trials
        assert service.active_jobs() == 0


class TestExternalRoundDriving:
    """`advance` / `finish` / `current_latency`: the hooks NetworkTuner uses
    to own the budget-allocation policy instead of delegating to run()."""

    def test_advance_drives_one_job_to_completion(self, service):
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=8))
        assert not handle.done
        assert service.current_latency(handle) == float("inf")
        total = 0
        while not handle.done:
            spent = service.advance(handle)
            assert spent >= 0
            total += spent
        assert total >= 8
        assert handle.result.trials_used == total
        assert service.active_jobs() == 0
        # The finished job landed in the registry like a run()-driven one.
        assert service.registry.lookup(gemm(64, 64, 64), service.target)

    def test_advance_respects_max_measures(self, service):
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=16))
        spent = service.advance(handle, max_measures=2)
        assert 0 < spent <= 2
        assert not handle.done
        assert service.current_latency(handle) < float("inf")
        service.finish(handle)

    def test_advance_on_done_handle_is_noop(self, service):
        done = service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=4)])[0]
        assert service.advance(done) == 0

    def test_finish_flushes_best_so_far(self, service):
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=64))
        service.advance(handle, max_measures=4)
        result = service.finish(handle)
        assert handle.done
        assert result.trials_used < 64  # cut short, not run to budget
        assert service.active_jobs() == 0
        assert service.registry.lookup(gemm(64, 64, 64), service.target)
        # Idempotent.
        assert service.finish(handle) is result

    def test_advance_resolves_coalesced_siblings(self, service):
        a = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=4))
        b = service.submit(TuningRequest(dag=gemm(64, 64, 64, name="twin"),
                                         n_trials=4))
        while not a.done:
            service.advance(a)
        assert b.done
        assert b.result is a.result

    def test_warm_start_donor_provenance(self, cpu, tiny_config):
        registry = ScheduleRegistry()
        service = TuningService(registry=registry, config=tiny_config, seed=0)
        service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=8)])
        # A similar workload warm-starts from the registered donor and the
        # finished result names it.
        handle = service.process(
            [TuningRequest(dag=gemm(96, 96, 96), n_trials=8)]
        )[0]
        donors = handle.result.extras.get("warm_start_donors", [])
        assert any("gemm_m64k64n64" in donor for donor in donors)


@pytest.mark.slow
class TestWarmStartTransfer:
    """Acceptance: warm-started runs reach the cold best in ≤ half the trials."""

    COLD_TRIALS = 32

    def _cold_run(self, cpu, tiny_config, dag):
        scheduler = HARLScheduler(
            config=tiny_config, seed=0,
            measurer=Measurer(cpu, noise=0.0, seed=0),
        )
        return scheduler.tune(dag, n_trials=self.COLD_TRIALS)

    def test_harl_warm_start_halves_trials_to_cold_best(self, cpu, tiny_config):
        donor = gemm(64, 64, 64)
        cold = self._cold_run(cpu, tiny_config, donor)

        registry = ScheduleRegistry()
        assert registry.record_result(donor, cpu, cold, source="cold-run")

        # A brand-new run (fresh scheduler, cost model and seed — only the
        # registry carries knowledge across) on the same workload.
        warm_scheduler = HARLScheduler(
            config=tiny_config, seed=1,
            measurer=Measurer(cpu, noise=0.0, seed=1),
            warm_start_provider=lambda dag: registry.warm_start_schedules(dag, cpu),
        )
        warm = warm_scheduler.tune(gemm(64, 64, 64), n_trials=self.COLD_TRIALS // 2)

        assert warm.best_latency <= cold.best_latency
        reached_at = warm.trials_to_reach(cold.best_latency)
        assert reached_at is not None
        assert reached_at <= self.COLD_TRIALS // 2

    def test_ansor_warm_start_halves_trials_to_cold_best(self, cpu, tiny_config):
        donor = gemm(64, 64, 64)
        cold = AnsorScheduler(
            config=AnsorConfig.from_harl(tiny_config), seed=0,
            measurer=Measurer(cpu, noise=0.0, seed=0),
        ).tune(donor, n_trials=self.COLD_TRIALS)

        registry = ScheduleRegistry()
        registry.record_result(donor, cpu, cold, source="cold-run")

        warm = AnsorScheduler(
            config=AnsorConfig.from_harl(tiny_config), seed=1,
            measurer=Measurer(cpu, noise=0.0, seed=1),
            warm_start_provider=lambda dag: registry.warm_start_schedules(dag, cpu),
        ).tune(gemm(64, 64, 64), n_trials=self.COLD_TRIALS // 2)

        assert warm.best_latency <= cold.best_latency
        reached_at = warm.trials_to_reach(cold.best_latency)
        assert reached_at is not None and reached_at <= self.COLD_TRIALS // 2

    def test_renamed_twin_is_answered_from_the_registry(self, cpu, tiny_config):
        # Cross-*rename* reuse goes through the registry fast path: the twin
        # gets the donor's stored result in O(1) with zero trials (the
        # simulator's landscape seed is name-keyed, so re-measuring a twin is
        # neither needed nor exact).
        donor = gemm(64, 64, 64)
        cold = self._cold_run(cpu, tiny_config, donor)
        registry = ScheduleRegistry()
        registry.record_result(donor, cpu, cold, source="cold-run")

        service = TuningService(registry=registry, config=tiny_config, seed=1,
                                target=cpu)
        handle = service.submit(
            TuningRequest(dag=gemm(64, 64, 64, name="renamed_twin"), n_trials=16)
        )
        assert handle.done and handle.source == SOURCE_REGISTRY
        assert handle.result.trials_used == 0
        assert handle.result.best_latency == pytest.approx(cold.best_latency)

    def test_service_warm_starts_similar_workloads(self, cpu, tiny_config):
        # A *similar* (not identical) workload borrows the donor's schedule
        # shape: the transferred schedules are measured within the first round.
        registry = ScheduleRegistry()
        service = TuningService(registry=registry, config=tiny_config, seed=0)
        service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=12)])

        relative = gemm(96, 96, 96)  # nearest-neighbour transfer target
        handle = service.process([TuningRequest(dag=relative, n_trials=12)])[0]
        assert handle.done
        assert handle.result.best_schedule is not None
        # Both workloads are now registered for future exact hits.
        assert len(registry) == 2


class _TrackingStubScheduler:
    """Stub scheduler that records concurrent tune_round entries."""

    def __init__(self):
        self._lock = threading.Lock()
        self.active = 0
        self.max_active = 0
        self.rounds = 0
        self.spent = 0
        self.measurer = self  # provides best_latency below

    def best_latency(self, name):
        return 1.0

    def tune_round(self, dag, max_measures):
        with self._lock:
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        time.sleep(0.002)  # widen the race window
        with self._lock:
            self.active -= 1
            self.rounds += 1
            spent = min(int(max_measures), 2)
            self.spent += spent
        return spent

    def finalize(self, dag):
        from repro.core.tuner import TuningResult

        return TuningResult(
            workload=dag.name, scheduler="stub", best_latency=1.0,
            best_throughput=1.0, best_schedule=None, trials_used=self.spent,
            search_steps=0, history=[],
        )


class TestDriveConcurrency:
    """Regressions for the concurrency bugfix pass in the serving core."""

    def test_advance_zero_measures_is_a_probe_not_exhaustion(self, service):
        """max_measures=0 must return 0 without finalizing the job."""
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=8))
        assert service.advance(handle, max_measures=0) == 0
        # Pre-fix this finalized the job with zero trials ("spent == 0 means
        # the scheduler is exhausted"); the handle must still be live.
        assert not handle.done
        assert service.active_jobs() == 1
        while not handle.done:
            service.advance(handle)
        assert handle.result.trials_used >= 8

    def test_concurrent_drivers_never_overlap_a_round(self, tiny_config):
        """run() and advance() racing on one job drive one round at a time."""
        stub = _TrackingStubScheduler()
        service = TuningService(
            registry=ScheduleRegistry(), config=tiny_config, seed=0,
            scheduler_factory=lambda name, seed, provider: stub,
        )
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=24))
        barrier = threading.Barrier(4)

        def advancer():
            barrier.wait()
            while not handle.done:
                service.advance(handle, max_measures=2)

        def runner():
            barrier.wait()
            service.run()

        threads = [threading.Thread(target=advancer) for _ in range(3)]
        threads.append(threading.Thread(target=runner))
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert handle.done
        assert stub.max_active == 1  # pre-fix: concurrent rounds overlapped
        # Drivers racing past the budget check must not overspend the job.
        assert handle.result.trials_used == 24
        assert service.active_jobs() == 0

    def test_finish_and_run_racing_finalize_once(self, tiny_config):
        stub = _TrackingStubScheduler()
        service = TuningService(
            registry=ScheduleRegistry(), config=tiny_config, seed=0,
            scheduler_factory=lambda name, seed, provider: stub,
        )
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=8))
        service.advance(handle, max_measures=2)
        barrier = threading.Barrier(2)
        results = [None, None]

        def finisher(slot):
            barrier.wait()
            results[slot] = service.finish(handle)

        threads = [threading.Thread(target=finisher, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert handle.done
        assert results[0] is results[1] is handle.result


class TestRecoverThenTransfer:
    """Regression for the embedding-through-records fix: recovered entries
    must stay visible to nearest() / warm-start transfer, not just exact
    lookups."""

    def test_recovered_entries_keep_their_embedding(self, tiny_config, tmp_path):
        from repro.records import RecordStore

        log = tmp_path / "records.jsonl"
        store = RecordStore(log)
        crashed = TuningService(
            registry=ScheduleRegistry(), config=tiny_config, seed=0,
            record_store=store,
        )
        crashed.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=8)])
        store.close()
        # "Crash": the registry dies with the process; only the record log
        # survives.

        revived = TuningService(
            registry=ScheduleRegistry(), config=tiny_config, seed=0,
            record_store=RecordStore.load(log),
        )
        assert revived.recover_from_records() == 1

        entry = revived.registry.lookup(gemm(64, 64, 64), revived.target, k=0).entry
        assert entry is not None
        # Pre-fix, MeasureRecord carried no embedding, so recovered entries
        # came back with an empty one and nearest() skipped them forever.
        assert len(entry.embedding) > 0

        similar = gemm(96, 96, 96, name="relative")
        neighbours = revived.registry.lookup(similar, revived.target, k=3).neighbors
        assert any(
            candidate.fingerprint == entry.fingerprint
            for _dist, candidate in neighbours
        )

        # And the whole point: a similar workload warm-starts from the
        # recovered donor.
        handle = revived.process(
            [TuningRequest(dag=similar, n_trials=8)]
        )[0]
        donors = handle.result.extras.get("warm_start_donors", [])
        assert any("gemm_m64k64n64" in donor for donor in donors)
