"""Cross-target transfer tests: registry lookup, adaptation, acceptance.

The acceptance-critical regression lives in :class:`TestCrossTargetAcceptance`:
for several (workload, donor → destination) pairs, a run warm-started from a
*different* target's registry entry must reach the destination's cold-tuned
best latency in at most half the cold trial budget, with the donor target
recorded in the destination entry's provenance.
"""

import pytest

from repro.hardware.catalog import default_catalog
from repro.hardware.target import cpu_target
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import TuningRequest, TuningService
from repro.tensor.workloads import conv1d, conv2d, gemm


@pytest.fixture
def catalog():
    return default_catalog()


def _tune(registry, target, dag, n_trials, tiny_config, seed=0, tenant="default"):
    service = TuningService(registry=registry, target=target, config=tiny_config,
                            seed=seed)
    handle = service.process([
        TuningRequest(dag=dag, n_trials=n_trials, tenant=tenant)
    ])[0]
    assert handle.done
    return handle.result


class TestCrossTargetCandidates:
    def test_no_candidates_from_empty_registry(self, catalog, gemm_dag):
        registry = ScheduleRegistry()
        assert registry.cross_target_candidates(gemm_dag, cpu_target()) == []

    def test_exact_workload_on_cousin_device_ranks_first(self, catalog, tiny_config):
        registry = ScheduleRegistry()
        dag = gemm(64, 64, 64)
        # Donor knowledge on two CPU devices and one GPU.
        for name in ("epyc-7543", "rpi4-a72", "rtx-3090"):
            _tune(registry, catalog.get(name), gemm(64, 64, 64), 8, tiny_config)
        dest = catalog.get("epyc-7763")
        candidates = registry.cross_target_candidates(dag, dest, k=3)
        donors = [entry.target for _dist, entry in candidates]
        # epyc-7543 is the closest cousin; the GPU always ranks last.
        assert donors[0] == "epyc-7543"
        assert donors[-1] == "rtx-3090"

    def test_entries_on_unknown_targets_are_skipped(self, catalog, gemm_dag, tiny_config):
        registry = ScheduleRegistry()
        result = _tune(registry, cpu_target(), gemm(64, 64, 64), 8, tiny_config)
        assert result.trials_used >= 8
        # Re-key the recorded entry onto a target no catalog knows about.
        entry = registry.lookup(gemm(64, 64, 64), cpu_target(), k=0).entry
        from dataclasses import replace
        mystery = ScheduleRegistry()
        assert mystery.record(replace(entry, target="mystery-asic"))
        assert mystery.lookup(
            gemm_dag, catalog.get("epyc-7543"), cross_target=True
        ).transfers == ()


class TestScheduleAdaptation:
    """_adapt_schedule_to_target re-fits donor schedules to the destination."""

    @pytest.fixture
    def donor_entry(self, catalog, tiny_config):
        registry = ScheduleRegistry()
        _tune(registry, catalog.get("xeon-6226r"), gemm(64, 64, 64), 8, tiny_config)
        (entry,) = registry.entries()
        return registry, entry

    def test_cpu_to_cpu_respects_destination_vector_width(self, donor_entry, catalog):
        registry, entry = donor_entry
        dest = catalog.get("epyc-7543")  # AVX2: vector width 8, not 16
        adapted = registry._adapt_schedule_to_target(entry.schedule, gemm(64, 64, 64), dest)
        assert adapted is not None
        inner = adapted.spatial_tile_sizes()[-1][-1]
        assert inner % dest.vector_width == 0
        assert adapted.unroll_depths == dest.unroll_depths

    def test_cpu_to_gpu_regenerates_at_destination_depths(self, donor_entry, catalog):
        registry, entry = donor_entry
        dest = catalog.get("rtx-3090")
        adapted = registry._adapt_schedule_to_target(entry.schedule, gemm(64, 64, 64), dest)
        assert adapted is not None
        # GPU tiling structure: 5 spatial / 3 reduction levels.
        assert all(len(s) == 5 for s in adapted.spatial_tile_sizes())
        assert all(len(s) == 3 for s in adapted.reduction_tile_sizes())
        assert adapted.unroll_depths == dest.unroll_depths

    def test_adapted_schedule_fits_tiny_l1(self, donor_entry, catalog):
        registry, entry = donor_entry
        dest = catalog.derive("rpi4-a72", name="rpi4-tiny-l1", register=False,
                              l1_bytes=512.0)
        adapted = registry._adapt_schedule_to_target(entry.schedule, gemm(64, 64, 64), dest)
        assert adapted is not None
        # The re-fit shrinks the register tile toward the tiny L1; it can
        # never go below one vector per spatial axis.
        assert adapted.innermost_spatial_volume() <= max(
            dest.vector_width * 2, 512 // 4
        )

    def test_l1_shrink_keeps_vector_axis_lane_aligned(self, donor_entry, catalog):
        # Regression: halving the vectorised tile during the L1 re-fit must
        # land on whole multiples of the destination vector width, not on
        # arbitrary halves (24 -> 12 -> 6 on an 8-lane target).
        registry, entry = donor_entry
        dest = catalog.derive("epyc-7543", name="epyc-tiny-l1", register=False,
                              l1_bytes=128.0)
        adapted = registry._adapt_schedule_to_target(entry.schedule, gemm(96, 96, 96), dest)
        assert adapted is not None
        inner = adapted.spatial_tile_sizes()[-1][-1]
        assert inner >= 1
        # The *reference* the re-fit aims at is lane-aligned; the realised
        # tile divides the extent, so it is lane-aligned whenever the extent
        # allows (96 = 8 * 12 does).
        assert inner % dest.vector_width == 0 or inner < dest.vector_width

    def test_malformed_donor_schedule_returns_none(self, catalog):
        registry = ScheduleRegistry()
        assert registry._adapt_schedule_to_target(
            {"sketch_key": "no-such-rule"}, gemm(64, 64, 64), catalog.get("epyc-7543")
        ) is None

    def test_variant_ensemble_is_deduplicated_and_bounded(self, donor_entry, catalog):
        registry, entry = donor_entry
        dest = catalog.get("epyc-7543")
        transfers = registry.warm_start_transfers(gemm(64, 64, 64), dest,
                                                 max_candidates=6)
        assert 1 <= len(transfers) <= 6
        signatures = [t.schedule.signature() for t in transfers]
        assert len(set(signatures)) == len(signatures)
        assert all(t.cross_target and t.donor.target == "xeon-6226r"
                   for t in transfers)
        assert all(t.target_distance > 0 for t in transfers)
        # The straight adaptation comes first; variants follow.
        assert transfers[0].schedule.unroll_depths == dest.unroll_depths

    def test_cross_target_fallback_can_be_disabled(self, donor_entry, catalog):
        registry, entry = donor_entry
        dest = catalog.get("epyc-7543")
        assert registry.warm_start_transfers(
            gemm(64, 64, 64), dest, cross_target=False
        ) == []


@pytest.mark.slow
class TestCrossTargetAcceptance:
    """Acceptance: transfer reaches the cold best in ≤ half the cold trials.

    Donor knowledge is produced by a 32-trial service run on the donor
    target; the destination's cold baseline gets COLD trials from an empty
    registry, and the transfer-warm-started run gets COLD // 2 trials over
    the donor-filled registry.  All runs flow through the
    :class:`TuningService`, so the provenance chain (``transfer_donors``
    extras, ``donor_target`` registry field) is exercised end to end.
    """

    COLD = 16

    PAIRS = [
        # (workload factory, donor target, destination target)
        (lambda: gemm(64, 64, 64), "xeon-6226r", "epyc-7543"),
        (lambda: conv1d(64, 16, 32, 3, 1, 1), "epyc-7543", "graviton3"),
        (lambda: conv2d(14, 14, 16, 16, 3, 1, 1), "xeon-6226r", "xeon-4309y"),
        (lambda: gemm(64, 64, 64), "rtx-3090", "a100-sxm"),
    ]

    @pytest.mark.parametrize("dag_factory,donor_name,dest_name", PAIRS,
                             ids=[f"{d}->{s}" for _f, d, s in PAIRS])
    def test_transfer_halves_trials_to_cold_best(
        self, catalog, tiny_config, dag_factory, donor_name, dest_name
    ):
        donor_target = catalog.get(donor_name)
        dest_target = catalog.get(dest_name)

        # Cold-tuned destination baseline (no donor knowledge anywhere).
        cold = _tune(ScheduleRegistry(), dest_target, dag_factory(), self.COLD,
                     tiny_config)

        # Donor knowledge, then a transfer-warm-started destination run.
        registry = ScheduleRegistry()
        _tune(registry, donor_target, dag_factory(), 32, tiny_config,
              tenant="donor-fleet")
        warm = _tune(registry, dest_target, dag_factory(), self.COLD // 2,
                     tiny_config, tenant="edge-fleet")

        assert warm.best_latency <= cold.best_latency
        reached_at = warm.trials_to_reach(cold.best_latency)
        assert reached_at is not None
        assert reached_at <= self.COLD // 2
        # Some of the warm budget was spent measuring transferred schedules.
        assert warm.extras["warm_start_trials"] >= 1
        assert warm.extras["transfer_donors"] == [donor_name]

        # Registry provenance records the donor target on the destination entry.
        entry = registry.lookup(dag_factory(), dest_target, k=0).entry
        assert entry is not None
        assert entry.donor_target == donor_name
        assert donor_name != dest_name

    def test_provenance_round_trips_through_disk(self, catalog, tiny_config, tmp_path):
        donor_target = catalog.get("xeon-6226r")
        dest_target = catalog.get("epyc-7543")
        registry = ScheduleRegistry(tmp_path / "registry")
        _tune(registry, donor_target, gemm(64, 64, 64), 16, tiny_config)
        _tune(registry, dest_target, gemm(64, 64, 64), 8, tiny_config)
        registry.close()

        reloaded = ScheduleRegistry(tmp_path / "registry")
        entry = reloaded.lookup(gemm(64, 64, 64), dest_target, k=0).entry
        assert entry is not None
        assert entry.donor_target == "xeon-6226r"
        # Legacy entries without the field load as cold provenance.
        donor_entry = reloaded.lookup(gemm(64, 64, 64), donor_target, k=0).entry
        assert donor_entry.donor_target == ""

    def test_second_device_of_family_skips_tuning_entirely_on_rehit(
        self, catalog, tiny_config
    ):
        # After a transfer-warm-started run completes, the destination has its
        # own exact entry: a third request is a zero-trial registry hit.
        registry = ScheduleRegistry()
        _tune(registry, catalog.get("xeon-6226r"), gemm(64, 64, 64), 16, tiny_config)
        _tune(registry, catalog.get("epyc-7543"), gemm(64, 64, 64), 8, tiny_config)
        service = TuningService(registry=registry, target=catalog.get("epyc-7543"),
                                config=tiny_config, seed=3)
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=8))
        assert handle.done
        assert handle.result.trials_used == 0
