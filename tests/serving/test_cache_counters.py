"""Regression tests: the hot-path caches eliminate redundant recomputation.

The cache counters introduced with the perf overhaul make duplicate work
observable, and these tests pin it at zero: one tuning round performs no
duplicate lowerings, no duplicate sketch generations and no duplicate
fingerprint digests in :class:`TuningService` and :class:`NetworkTuner`.
"""

import pytest

from repro.caching import (
    clear_caches,
    fingerprint_stats,
    lowering_cache,
    reset_cache_stats,
    sketch_cache,
)
from repro.experiments.network_runner import NetworkTuner
from repro.networks.graph import NetworkGraph, Subgraph
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import TuningRequest, TuningService
from repro.tensor.workloads import conv1d, gemm


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_caches()
    reset_cache_stats()
    yield
    clear_caches()
    reset_cache_stats()


def _toy_network(name="counters"):
    return NetworkGraph(
        name=name,
        subgraphs=[
            Subgraph("mm", gemm(48, 48, 48, name=f"{name}_mm"), weight=2,
                     similarity_group="gemm"),
            Subgraph("c1d", conv1d(32, 8, 16, 3, 1, 1, name=f"{name}_c1d"),
                     weight=1, similarity_group="conv1d"),
        ],
    )


class TestServiceCounters:
    def test_zero_duplicate_lowerings_per_round(self, tiny_config):
        """Each finished job lowers its best schedule exactly once."""
        service = TuningService(config=tiny_config, seed=0)
        dags = [gemm(48, 48, 48), conv1d(32, 8, 16, 3, 1, 1)]
        handles = [
            service.submit(TuningRequest(dag=dag, n_trials=8)) for dag in dags
        ]
        service.run()
        finished = [h for h in handles if h.result.best_schedule is not None]
        assert lowering_cache.stats.misses == len(finished)
        # Repeated finalization must be pure cache traffic, never a relower.
        for handle in handles:
            service.finish(handle)
        assert lowering_cache.stats.misses == len(finished)
        for handle in finished:
            assert "program" in handle.result.extras

    def test_fingerprint_computed_once_per_dag(self, tiny_config):
        """Submit + warm-start + registry recording share one digest per DAG."""
        service = TuningService(config=tiny_config, seed=0)
        dags = [gemm(48, 48, 48), conv1d(32, 8, 16, 3, 1, 1)]
        for dag in dags:
            service.submit(TuningRequest(dag=dag, n_trials=8))
        service.run()
        assert fingerprint_stats.misses == len(dags)
        assert fingerprint_stats.hits > 0  # the re-uses that used to recompute

    def test_coalesced_duplicates_share_everything(self, tiny_config):
        """N identical submissions: one job, one sketch family, one digest each."""
        service = TuningService(config=tiny_config, seed=0)
        dags = [gemm(48, 48, 48) for _ in range(3)]  # distinct objects, same DAG
        for dag in dags:
            service.submit(TuningRequest(dag=dag, n_trials=8))
        assert service.coalesced_requests == 2
        service.run()
        # One digest per distinct object, but a single sketch generation for
        # the one (workload, target) the coalesced job actually tunes.
        assert fingerprint_stats.misses == len(dags)
        assert sketch_cache.stats.misses <= 2  # job context + registry restore
        assert lowering_cache.stats.misses <= 1


class TestNetworkTunerCounters:
    def test_zero_duplicate_sketch_generation_per_round(self, tiny_config):
        registry = ScheduleRegistry()
        service = TuningService(registry=registry, config=tiny_config, seed=0)
        NetworkTuner(_toy_network(), service).tune(n_trials=16)
        first_pass_misses = sketch_cache.stats.misses
        # Unique (workload, depth) pairs only: two subgraphs on one target.
        assert first_pass_misses == 2

        # A second pass over the same registry (fresh service, fresh DAG
        # objects) is answered from the registry and regenerates nothing.
        service2 = TuningService(registry=registry, config=tiny_config, seed=1)
        report = NetworkTuner(_toy_network(), service2).tune(n_trials=16)
        assert report.registry_hits == 2
        assert sketch_cache.stats.misses == first_pass_misses

    def test_lowering_deduped_across_passes(self, tiny_config):
        registry = ScheduleRegistry()
        service = TuningService(registry=registry, config=tiny_config, seed=0)
        NetworkTuner(_toy_network(), service).tune(n_trials=16)
        lowered = lowering_cache.stats.misses
        assert lowered <= 2  # at most one program per tuned subgraph
        service2 = TuningService(registry=registry, config=tiny_config, seed=1)
        NetworkTuner(_toy_network(), service2).tune(n_trials=16)
        assert lowering_cache.stats.misses == lowered
