"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.adaptive_stopping import AdaptiveStopper
from repro.core.bandit import SlidingWindowUCB
from repro.costmodel.tree import RegressionTree
from repro.tensor.actions import ActionSpace, apply_action
from repro.tensor.factors import move_factor, prime_factors, product, random_factorization
from repro.tensor.features import FEATURE_SIZE, schedule_features
from repro.tensor.sampler import sample_schedule
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import gemm

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

# A pool of sketches reused across examples (building them is comparatively slow).
_SKETCHES = {
    (m, k, n): generate_sketches(gemm(m, k, n))[0]
    for (m, k, n) in [(64, 64, 64), (128, 96, 32), (224, 48, 80)]
}
_SHAPES = sorted(_SKETCHES)


# --------------------------------------------------------------------------- #
# factorisation invariants
# --------------------------------------------------------------------------- #
@SETTINGS
@given(extent=st.integers(min_value=1, max_value=4096), levels=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_random_factorization_always_multiplies_to_extent(extent, levels, seed):
    sizes = random_factorization(extent, levels, np.random.default_rng(seed))
    assert len(sizes) == levels
    assert all(s >= 1 for s in sizes)
    assert product(sizes) == extent


@SETTINGS
@given(n=st.integers(min_value=2, max_value=100000))
def test_prime_factors_multiply_back_and_are_prime(n):
    factors = prime_factors(n)
    assert product(factors) == n
    for p in factors:
        assert p >= 2
        assert all(p % d for d in range(2, int(p ** 0.5) + 1))


@SETTINGS
@given(extent=st.integers(min_value=1, max_value=1024), levels=st.integers(min_value=2, max_value=5),
       seed=st.integers(min_value=0, max_value=1000),
       src=st.integers(min_value=0, max_value=4), dst=st.integers(min_value=0, max_value=4))
def test_move_factor_preserves_product(extent, levels, seed, src, dst):
    sizes = random_factorization(extent, levels, np.random.default_rng(seed))
    moved = move_factor(sizes, src % levels, dst % levels)
    assert product(moved) == extent
    assert all(s >= 1 for s in moved)


# --------------------------------------------------------------------------- #
# schedule / action invariants
# --------------------------------------------------------------------------- #
@SETTINGS
@given(shape=st.sampled_from(_SHAPES), seed=st.integers(min_value=0, max_value=10_000),
       n_actions=st.integers(min_value=1, max_value=8))
def test_random_action_chains_keep_schedules_valid(shape, seed, n_actions):
    """Applying any chain of sampled actions never breaks schedule invariants."""
    sketch = _SKETCHES[shape]
    rng = np.random.default_rng(seed)
    schedule = sample_schedule(sketch, rng)
    space = ActionSpace(sketch)
    for _ in range(n_actions):
        schedule = apply_action(schedule, space.sample(rng))
        for sizes, (_n, _k, extent, _l) in zip(schedule.tile_sizes, sketch.tiled_iters):
            assert product(sizes) == extent
        assert 0 <= schedule.num_parallel <= schedule.max_parallel
        assert 0 <= schedule.compute_at_index < len(schedule.dag.compute_at_candidates())
        assert 0 <= schedule.unroll_index < len(schedule.unroll_depths)


@SETTINGS
@given(shape=st.sampled_from(_SHAPES), seed=st.integers(min_value=0, max_value=10_000))
def test_schedule_copy_roundtrip_and_feature_stability(shape, seed):
    sketch = _SKETCHES[shape]
    schedule = sample_schedule(sketch, np.random.default_rng(seed))
    clone = schedule.copy()
    assert clone == schedule and hash(clone) == hash(schedule)
    feats = schedule_features(schedule)
    assert feats.shape == (FEATURE_SIZE,)
    assert np.array_equal(feats, schedule_features(clone))
    assert np.all(np.isfinite(feats))


@SETTINGS
@given(shape=st.sampled_from(_SHAPES), index=st.integers(min_value=0, max_value=10_000))
def test_action_encode_decode_roundtrip(shape, index):
    space = ActionSpace(_SKETCHES[shape])
    tile_idx = index % space.tiling_size
    indices = (tile_idx, index % 3, (index // 3) % 3, (index // 9) % 3)
    action = space.decode(indices)
    assert space.encode(action) == indices


# --------------------------------------------------------------------------- #
# bandit invariants
# --------------------------------------------------------------------------- #
@SETTINGS
@given(num_arms=st.integers(min_value=1, max_value=8),
       rewards=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=60),
       window=st.integers(min_value=1, max_value=32))
def test_bandit_counts_never_exceed_window(num_arms, rewards, window):
    mab = SlidingWindowUCB(num_arms, window=window, rng=np.random.default_rng(0))
    for reward in rewards:
        arm = mab.select()
        assert 0 <= arm < num_arms
        mab.update(arm, reward)
    counts = mab.counts()
    assert counts.sum() <= window
    assert mab.total_plays().sum() == len(rewards)
    values = mab.values()
    assert np.all((values >= 0.0) & (values <= 1.0))


# --------------------------------------------------------------------------- #
# adaptive stopping invariants
# --------------------------------------------------------------------------- #
@SETTINGS
@given(advantages=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=1, max_size=64),
       ratio=st.floats(min_value=0.1, max_value=0.9))
def test_adaptive_stopper_eliminates_exactly_floor_rho_n(advantages, ratio):
    stopper = AdaptiveStopper(window_size=5, elimination_ratio=ratio, min_tracks=1)
    survivors = stopper.select_survivors(advantages)
    expected_survivors = len(advantages) - int(np.floor(ratio * len(advantages)))
    assert len(survivors) == expected_survivors
    assert survivors == sorted(survivors)
    # Every eliminated track has an advantage <= every survivor's advantage.
    if survivors and expected_survivors < len(advantages):
        eliminated = [i for i in range(len(advantages)) if i not in set(survivors)]
        assert max(advantages[i] for i in eliminated) <= min(advantages[i] for i in survivors) + 1e-12


# --------------------------------------------------------------------------- #
# regression tree invariants
# --------------------------------------------------------------------------- #
@SETTINGS
@given(seed=st.integers(min_value=0, max_value=1000),
       n=st.integers(min_value=3, max_value=60),
       depth=st.integers(min_value=1, max_value=6))
def test_tree_predictions_stay_within_target_range(seed, n, depth):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 4))
    y = rng.normal(size=n)
    pred = RegressionTree(max_depth=depth, min_samples_leaf=1).fit(X, y).predict(X)
    assert np.all(pred >= y.min() - 1e-9)
    assert np.all(pred <= y.max() + 1e-9)
    assert np.all(np.isfinite(pred))
