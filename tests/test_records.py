"""Unit tests for tuning-record persistence."""

import pytest

from repro.core.scheduler import HARLScheduler
from repro.hardware.simulator import LatencySimulator
from repro.records import (
    TuningRecord,
    best_record,
    load_records,
    result_to_record,
    save_records,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.tensor.sampler import sample_schedule
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import conv2d, gemm


class TestScheduleSerialization:
    def test_roundtrip_preserves_identity(self, rng):
        dag = gemm(128, 128, 128)
        for sketch in generate_sketches(dag):
            schedule = sample_schedule(sketch, rng)
            restored = schedule_from_dict(schedule_to_dict(schedule), gemm(128, 128, 128))
            assert restored.signature() == schedule.signature()

    def test_roundtrip_preserves_simulated_latency(self, rng, cpu):
        dag = conv2d(14, 14, 32, 64, 3, 1, 1)
        sketch = generate_sketches(dag)[1]
        schedule = sample_schedule(sketch, rng)
        restored = schedule_from_dict(
            schedule_to_dict(schedule), conv2d(14, 14, 32, 64, 3, 1, 1)
        )
        sim = LatencySimulator(cpu)
        assert sim.latency(restored) == pytest.approx(sim.latency(schedule))

    def test_wrong_workload_rejected(self, rng):
        dag = gemm(128, 128, 128)
        schedule = sample_schedule(generate_sketches(dag)[0], rng)
        with pytest.raises(ValueError):
            schedule_from_dict(schedule_to_dict(schedule), gemm(256, 128, 128))

    def test_unknown_sketch_key_rejected(self, rng):
        dag = gemm(128, 128, 128)
        schedule = sample_schedule(generate_sketches(dag)[0], rng)
        data = schedule_to_dict(schedule)
        data["sketch_key"] = "tiling+warp_drive"
        with pytest.raises(ValueError):
            schedule_from_dict(data, gemm(128, 128, 128))


class TestRecordFiles:
    @pytest.fixture
    def tuning_result(self, tiny_config, gemm_dag):
        scheduler = HARLScheduler(config=tiny_config, seed=0)
        return scheduler.tune(gemm_dag, n_trials=8)

    def test_result_to_record(self, tuning_result):
        record = result_to_record(tuning_result)
        assert record.workload == tuning_result.workload
        assert record.latency == tuning_result.best_latency
        assert record.schedule is not None

    def test_save_and_load_roundtrip(self, tuning_result, tmp_path):
        path = save_records(tmp_path / "logs" / "records.json", [tuning_result])
        loaded = load_records(path)
        assert len(loaded) == 1
        record = loaded[0]
        assert record.workload == tuning_result.workload
        assert record.latency == pytest.approx(tuning_result.best_latency)
        assert record.history  # progress curve persisted

    def test_restored_schedule_reproduces_latency(self, tuning_result, tmp_path, cpu, gemm_dag):
        path = save_records(tmp_path / "records.json", [tuning_result])
        record = load_records(path)[0]
        restored = record.restore_schedule(gemm_dag)
        sim = LatencySimulator(cpu)
        # The stored latency includes measurement noise; the simulator value is close.
        assert sim.latency(restored) == pytest.approx(record.latency, rel=0.2)

    def test_best_record_selection(self):
        records = [
            TuningRecord("w", "a", 2.0, 1.0, 10, None, []),
            TuningRecord("w", "b", 1.0, 2.0, 10, None, []),
            TuningRecord("other", "c", 0.1, 5.0, 10, None, []),
        ]
        assert best_record(records, "w").scheduler == "b"
        with pytest.raises(KeyError):
            best_record(records, "missing")

    def test_restore_without_schedule_rejected(self, gemm_dag):
        record = TuningRecord("w", "a", 1.0, 1.0, 1, None, [])
        with pytest.raises(ValueError):
            record.restore_schedule(gemm_dag)

    def test_version_check(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "records": []}')
        with pytest.raises(ValueError):
            load_records(bad)
