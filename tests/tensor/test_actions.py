"""Unit tests for the modification action space (Table 3)."""

import pytest

from repro.tensor.actions import ActionSpace, ModificationAction, apply_action
from repro.tensor.factors import product
from repro.tensor.sampler import sample_schedule


@pytest.fixture
def space(gemm_sketch):
    return ActionSpace(gemm_sketch)


class TestActionSpaceSizes:
    def test_tiling_head_size(self, space, gemm_sketch):
        n = gemm_sketch.num_tile_slots
        assert space.tiling_size == n * n + 1

    def test_delta_heads_have_three_actions(self, space):
        assert space.compute_at_size == 3
        assert space.parallel_size == 3
        assert space.unroll_size == 3

    def test_head_sizes_order(self, space):
        assert space.head_sizes == (space.tiling_size, 3, 3, 3)


class TestEncodingDecoding:
    def test_dummy_tiling_is_last_index(self, space):
        assert space.decode_tiling(space.tiling_size - 1) is None
        assert space.encode_tiling(None) == space.tiling_size - 1

    def test_roundtrip_all_tiling_indices(self, space):
        for idx in range(space.tiling_size):
            move = space.decode_tiling(idx)
            assert space.encode_tiling(move) == idx

    def test_decode_out_of_range(self, space):
        with pytest.raises(IndexError):
            space.decode_tiling(space.tiling_size)

    def test_joint_roundtrip(self, space):
        action = space.decode((5, 0, 2, 1))
        assert space.encode(action) == (5, 0, 2, 1)

    def test_sample_within_bounds(self, space, rng):
        for _ in range(50):
            action = space.sample(rng)
            indices = space.encode(action)
            for idx, size in zip(indices, space.head_sizes):
                assert 0 <= idx < size

    def test_all_single_tile_moves_count(self, space, gemm_sketch):
        n = gemm_sketch.num_tile_slots
        assert len(space.all_single_tile_moves()) == n * (n - 1)


class TestModificationAction:
    def test_noop_detection(self):
        assert ModificationAction(None, 0, 0, 0).is_noop
        assert not ModificationAction((0, 1), 0, 0, 0).is_noop

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            ModificationAction(None, 2, 0, 0)

    def test_rejects_negative_slots(self):
        with pytest.raises(ValueError):
            ModificationAction((-1, 0), 0, 0, 0)


class TestApplyAction:
    def test_noop_returns_equal_schedule(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        out = apply_action(schedule, ModificationAction(None, 0, 0, 0))
        assert out == schedule
        assert out is not schedule

    def test_input_schedule_never_mutated(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        signature = schedule.signature()
        space = ActionSpace(gemm_sketch)
        for _ in range(30):
            apply_action(schedule, space.sample(rng))
        assert schedule.signature() == signature

    def test_tile_move_preserves_extent_products(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        space = ActionSpace(gemm_sketch)
        for action in space.all_single_tile_moves():
            out = apply_action(schedule, action)
            for sizes, (_n, _k, extent, _l) in zip(out.tile_sizes, gemm_sketch.tiled_iters):
                assert product(sizes) == extent

    def test_cross_iterator_move_is_noop_on_tiles(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        # slot 0 belongs to iterator i; the last slot belongs to the reduction k.
        action = ModificationAction((0, schedule.num_tile_slots - 1), 0, 0, 0)
        out = apply_action(schedule, action)
        assert out.tile_sizes == schedule.tile_sizes

    def test_same_iterator_move_changes_tiles(self, gemm_sketch):
        tile_sizes = [[8, 1, 1, 16], [128, 1, 1, 1], [128, 1]]
        from repro.tensor.schedule import Schedule

        schedule = Schedule(gemm_sketch, tile_sizes, 0, 1, 0)
        out = apply_action(schedule, ModificationAction((0, 3), 0, 0, 0))
        assert out.tile_sizes[0] == [4, 1, 1, 32]

    def test_compute_at_clamped_low(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        schedule.compute_at_index = 0
        out = apply_action(schedule, ModificationAction(None, -1, 0, 0))
        assert out.compute_at_index == 0

    def test_compute_at_clamped_high(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        top = len(schedule.dag.compute_at_candidates()) - 1
        schedule.compute_at_index = top
        out = apply_action(schedule, ModificationAction(None, 1, 0, 0))
        assert out.compute_at_index == top

    def test_parallel_delta_applied(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        schedule.num_parallel = 1
        out = apply_action(schedule, ModificationAction(None, 0, 1, 0))
        assert out.num_parallel == 2

    def test_unroll_clamped(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        schedule.unroll_index = 0
        out = apply_action(schedule, ModificationAction(None, 0, 0, -1))
        assert out.unroll_index == 0

    def test_dummy_plus_deltas_only_touch_knobs(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        out = apply_action(schedule, ModificationAction(None, 0, 0, 1))
        assert out.tile_sizes == schedule.tile_sizes
        assert out.unroll_index == min(schedule.unroll_index + 1, len(schedule.unroll_depths) - 1)
