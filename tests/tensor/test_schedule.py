"""Unit tests for the Schedule state representation."""

import pytest

from repro.tensor.factors import product
from repro.tensor.sampler import sample_schedule
from repro.tensor.schedule import CPU_UNROLL_DEPTHS, GPU_UNROLL_DEPTHS, Schedule
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import conv2d, gemm


def _manual_schedule(sketch, **overrides):
    tile_sizes = []
    for _name, _kind, extent, levels in sketch.tiled_iters:
        sizes = [1] * levels
        sizes[-1] = extent
        tile_sizes.append(sizes)
    kwargs = dict(
        sketch=sketch,
        tile_sizes=tile_sizes,
        compute_at_index=0,
        num_parallel=1,
        unroll_index=0,
    )
    kwargs.update(overrides)
    return Schedule(**kwargs)


class TestValidation:
    def test_valid_schedule_constructs(self, gemm_sketch):
        schedule = _manual_schedule(gemm_sketch)
        assert schedule.dag.name.startswith("gemm")

    def test_tile_product_must_match_extent(self, gemm_sketch):
        schedule = _manual_schedule(gemm_sketch)
        bad = [list(s) for s in schedule.tile_sizes]
        bad[0][-1] *= 2
        with pytest.raises(ValueError):
            Schedule(gemm_sketch, bad, 0, 1, 0)

    def test_wrong_number_of_lists_rejected(self, gemm_sketch):
        schedule = _manual_schedule(gemm_sketch)
        with pytest.raises(ValueError):
            Schedule(gemm_sketch, schedule.tile_sizes[:-1], 0, 1, 0)

    def test_wrong_level_count_rejected(self, gemm_sketch):
        schedule = _manual_schedule(gemm_sketch)
        bad = [list(s) for s in schedule.tile_sizes]
        bad[0] = bad[0] + [1]
        with pytest.raises(ValueError):
            Schedule(gemm_sketch, bad, 0, 1, 0)

    def test_compute_at_range_checked(self, gemm_sketch):
        with pytest.raises(ValueError):
            _manual_schedule(gemm_sketch, compute_at_index=99)

    def test_num_parallel_range_checked(self, gemm_sketch):
        with pytest.raises(ValueError):
            _manual_schedule(gemm_sketch, num_parallel=7)

    def test_unroll_index_range_checked(self, gemm_sketch):
        with pytest.raises(ValueError):
            _manual_schedule(gemm_sketch, unroll_index=len(CPU_UNROLL_DEPTHS))


class TestDerivedQuantities:
    def test_unroll_depth_lookup(self, gemm_sketch):
        schedule = _manual_schedule(gemm_sketch, unroll_index=2)
        assert schedule.unroll_depth == CPU_UNROLL_DEPTHS[2]

    def test_gpu_unroll_list(self, rng):
        dag = gemm(64, 64, 64)
        sketch = generate_sketches(dag, 5, 3)[0]
        schedule = sample_schedule(sketch, rng, GPU_UNROLL_DEPTHS)
        assert schedule.unroll_depths == GPU_UNROLL_DEPTHS

    def test_slot_to_iter_roundtrip(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        seen = []
        for slot in range(schedule.num_tile_slots):
            seen.append(schedule.slot_to_iter(slot))
        # Each (iter, level) pair appears exactly once.
        assert len(set(seen)) == schedule.num_tile_slots

    def test_slot_out_of_range(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        with pytest.raises(IndexError):
            schedule.slot_to_iter(schedule.num_tile_slots)

    def test_parallel_extent_zero_parallel(self, gemm_sketch):
        schedule = _manual_schedule(gemm_sketch, num_parallel=0)
        assert schedule.parallel_extent() == 1

    def test_parallel_extent_product_of_outer_tiles(self, gemm_sketch):
        schedule = _manual_schedule(gemm_sketch)
        schedule.tile_sizes[0] = [4, 1, 1, 32]  # i = 128
        schedule.tile_sizes[1] = [2, 1, 1, 64]  # j = 128
        schedule.num_parallel = 2
        assert schedule.parallel_extent() == 8

    def test_innermost_volumes(self, gemm_sketch):
        schedule = _manual_schedule(gemm_sketch)
        schedule.tile_sizes[0] = [8, 1, 1, 16]
        schedule.tile_sizes[1] = [8, 1, 4, 4]
        schedule.tile_sizes[2] = [16, 8]
        assert schedule.innermost_spatial_volume() == 16 * 4
        assert schedule.innermost_reduction_volume() == 8

    def test_spatial_and_reduction_split(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        assert len(schedule.spatial_tile_sizes()) == 2
        assert len(schedule.reduction_tile_sizes()) == 1

    def test_flat_tile_sizes_length(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        assert len(schedule.flat_tile_sizes()) == schedule.num_tile_slots


class TestIdentity:
    def test_copy_is_equal_but_independent(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        clone = schedule.copy()
        assert clone == schedule
        clone.tile_sizes[0][0] *= 1  # no-op; now actually change a knob
        clone.num_parallel = (clone.num_parallel + 1) % (clone.max_parallel + 1)
        assert clone != schedule

    def test_signature_hashable(self, gemm_sketch, rng):
        schedules = [sample_schedule(gemm_sketch, rng) for _ in range(10)]
        assert len({hash(s) for s in schedules}) >= 2

    def test_conv_schedule_samples_valid(self, rng):
        dag = conv2d(14, 14, 32, 64, 3, 1, 1)
        sketch = generate_sketches(dag)[0]
        schedule = sample_schedule(sketch, rng)
        for sizes, (_n, _k, extent, _l) in zip(schedule.tile_sizes, sketch.tiled_iters):
            assert product(sizes) == extent
