"""Unit tests for sketch generation (Table 2 rules)."""

import pytest

from repro.tensor.sketch import Sketch, generate_sketches
from repro.tensor.workloads import conv2d, elementwise, gemm, softmax


class TestGenerateSketches:
    def test_gemm_with_bias_has_three_sketches(self):
        """Matches the paper: a matrix multiplication subgraph has 3 sketches."""
        sketches = generate_sketches(gemm(1024, 1024, 1024))
        assert len(sketches) == 3
        keys = {s.key for s in sketches}
        assert keys == {"tiling", "tiling+fuse", "tiling+rfactor"}

    def test_gemm_without_consumer_uses_cache_write(self):
        sketches = generate_sketches(gemm(256, 256, 256, bias=False))
        keys = {s.key for s in sketches}
        assert "tiling+cache_write" in keys
        assert "tiling+fuse" not in keys

    def test_small_reduction_skips_rfactor(self):
        sketches = generate_sketches(gemm(128, 8, 128))
        assert all(not s.rfactor for s in sketches)

    def test_conv2d_inlines_pad(self):
        sketches = generate_sketches(conv2d(14, 14, 32, 64, 3, 1, 1))
        assert all("pad" in s.inlined_stages for s in sketches)
        assert all("inline" in s.rules for s in sketches)

    def test_elementwise_gets_single_light_sketch(self):
        sketches = generate_sketches(elementwise([64, 64]))
        assert len(sketches) == 1
        assert sketches[0].spatial_levels <= 2

    def test_softmax_single_sketch(self):
        assert len(generate_sketches(softmax(128, 128))) == 1

    def test_gpu_levels_respected(self):
        sketches = generate_sketches(gemm(256, 256, 256), spatial_levels=5, reduction_levels=3)
        assert sketches[0].spatial_levels == 5
        assert sketches[0].reduction_levels == 3


class TestSketchProperties:
    def test_tiled_iters_ordering(self):
        sketch = generate_sketches(gemm(32, 16, 8))[0]
        names = [name for name, *_ in sketch.tiled_iters]
        assert names == ["i", "j", "k"]

    def test_num_tile_slots(self):
        sketch = generate_sketches(gemm(32, 16, 8))[0]
        # 2 spatial iters x 4 levels + 1 reduction iter x 2 levels
        assert sketch.num_tile_slots == 2 * 4 + 1 * 2

    def test_rejects_unknown_rule(self, gemm_dag):
        with pytest.raises(ValueError):
            Sketch(dag=gemm_dag, rules=("warp_drive",), spatial_levels=4, reduction_levels=2)

    def test_rejects_fuse_and_cache_write_together(self, gemm_dag):
        with pytest.raises(ValueError):
            Sketch(
                dag=gemm_dag,
                rules=("tiling",),
                spatial_levels=4,
                reduction_levels=2,
                fuse_consumer=True,
                cache_write=True,
            )

    def test_rejects_bad_levels(self, gemm_dag):
        with pytest.raises(ValueError):
            Sketch(dag=gemm_dag, rules=("tiling",), spatial_levels=0, reduction_levels=2)

    def test_key_reflects_flags(self, gemm_dag):
        sketch = Sketch(
            dag=gemm_dag, rules=("tiling", "rfactor"), spatial_levels=4, reduction_levels=2, rfactor=True
        )
        assert sketch.key == "tiling+rfactor"
