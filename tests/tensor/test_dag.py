"""Unit tests for the compute DAG representation."""

import pytest

from repro.tensor.dag import ComputeDAG, Iterator, make_stage
from repro.tensor.workloads import conv2d, gemm, softmax


class TestIterator:
    def test_spatial_default(self):
        it = Iterator("i", 16)
        assert not it.is_reduction

    def test_reduction_kind(self):
        assert Iterator("k", 8, "reduction").is_reduction

    def test_rejects_bad_extent(self):
        with pytest.raises(ValueError):
            Iterator("i", 0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Iterator("i", 4, "banana")


class TestStage:
    def test_iteration_space_and_flops(self):
        stage = make_stage("mm", [("i", 4), ("j", 8)], [("k", 16)], flops_per_element=2.0)
        assert stage.iteration_space == 4 * 8 * 16
        assert stage.flops == 2.0 * 4 * 8 * 16

    def test_output_elements_exclude_reduction(self):
        stage = make_stage("mm", [("i", 4), ("j", 8)], [("k", 16)])
        assert stage.output_elements == 32

    def test_spatial_and_reduction_split(self):
        stage = make_stage("mm", [("i", 4)], [("k", 2), ("l", 3)])
        assert [it.name for it in stage.spatial_iters] == ["i"]
        assert [it.name for it in stage.reduction_iters] == ["k", "l"]


class TestComputeDAG:
    def test_gemm_flops(self):
        dag = gemm(64, 32, 16, bias=False)
        assert dag.flops == pytest.approx(2.0 * 64 * 32 * 16)

    def test_gemm_with_bias_adds_epilogue_flops(self):
        base = gemm(64, 32, 16, bias=False).flops
        with_bias = gemm(64, 32, 16, bias=True).flops
        assert with_bias == pytest.approx(base + 64 * 16)

    def test_main_stage_lookup(self):
        dag = gemm(8, 8, 8)
        assert dag.main_stage.name == "matmul"

    def test_unknown_stage_raises(self):
        dag = gemm(8, 8, 8)
        with pytest.raises(KeyError):
            dag.stage("nope")

    def test_has_data_reuse_for_gemm(self):
        assert gemm(8, 8, 8).has_data_reuse

    def test_elementwise_consumer_detected(self):
        assert gemm(8, 8, 8, bias=True).has_fusable_consumer
        assert not gemm(8, 8, 8, bias=False).has_fusable_consumer

    def test_consumers(self):
        dag = gemm(8, 8, 8, bias=True)
        assert [s.name for s in dag.consumers("matmul")] == ["bias_add"]

    def test_compute_at_candidates_contains_root(self):
        dag = gemm(8, 8, 8)
        candidates = dag.compute_at_candidates()
        assert candidates[0] == ("root", -1)
        assert len(candidates) == 1 + len(dag.main_stage.spatial_iters)

    def test_workload_key_is_stable_and_distinct(self):
        a = gemm(8, 8, 8)
        b = gemm(8, 8, 8)
        c = gemm(16, 8, 8)
        assert a.workload_key() == b.workload_key()
        assert a.workload_key() != c.workload_key()

    def test_arithmetic_intensity_positive(self):
        assert gemm(64, 64, 64).arithmetic_intensity() > 0

    def test_duplicate_stage_names_rejected(self):
        stage = make_stage("x", [("i", 2)])
        with pytest.raises(ValueError):
            ComputeDAG("bad", [stage, stage], "x", 1, 1)

    def test_unknown_main_stage_rejected(self):
        stage = make_stage("x", [("i", 2)])
        with pytest.raises(ValueError):
            ComputeDAG("bad", [stage], "y", 1, 1)

    def test_unknown_producer_rejected(self):
        stage = make_stage("x", [("i", 2)], producers=("ghost",))
        with pytest.raises(ValueError):
            ComputeDAG("bad", [stage], "x", 1, 1)

    def test_conv_dag_reduction_iters(self):
        dag = conv2d(14, 14, 32, 64, 3, 1, 1)
        names = [it.name for it in dag.reduction_iters]
        assert names == ["ci", "kh", "kw"]

    def test_softmax_main_stage_has_no_reduction(self):
        dag = softmax(64, 32)
        assert len(dag.reduction_iters) == 0
        assert not dag.has_data_reuse
