"""Unit tests for schedule feature extraction."""

import numpy as np

from repro.tensor.actions import ActionSpace, ModificationAction, apply_action
from repro.tensor.features import FEATURE_SIZE, batch_features, schedule_features
from repro.tensor.sampler import sample_initial_schedules, sample_schedule
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import conv3d, gemm, softmax


class TestScheduleFeatures:
    def test_fixed_length(self, gemm_sketch, rng):
        feats = schedule_features(sample_schedule(gemm_sketch, rng))
        assert feats.shape == (FEATURE_SIZE,)

    def test_all_finite(self, gemm_sketch, rng):
        for _ in range(20):
            feats = schedule_features(sample_schedule(gemm_sketch, rng))
            assert np.all(np.isfinite(feats))

    def test_deterministic(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        assert np.array_equal(schedule_features(schedule), schedule_features(schedule))

    def test_different_operators_same_length(self, rng):
        dags = [gemm(64, 64, 64), conv3d(4, 8, 8, 4, 4, 3, 1, 1), softmax(64, 64)]
        for dag in dags:
            sketch = generate_sketches(dag)[0]
            feats = schedule_features(sample_schedule(sketch, rng))
            assert feats.shape == (FEATURE_SIZE,)

    def test_features_change_with_tiling(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        space = ActionSpace(gemm_sketch)
        changed = None
        for action in space.all_single_tile_moves():
            candidate = apply_action(schedule, action)
            if candidate != schedule:
                changed = candidate
                break
        assert changed is not None
        assert not np.array_equal(schedule_features(schedule), schedule_features(changed))

    def test_features_change_with_unroll(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng)
        schedule.unroll_index = 0
        other = apply_action(schedule, ModificationAction(None, 0, 0, 1))
        assert not np.array_equal(schedule_features(schedule), schedule_features(other))

    def test_sketch_flags_encoded(self, rng):
        dag = gemm(256, 256, 256)
        sketches = {s.key: s for s in generate_sketches(dag)}
        plain = schedule_features(sample_schedule(sketches["tiling"], rng))
        fused = schedule_features(sample_schedule(sketches["tiling+fuse"], rng))
        assert plain[-3] == 0.0 and fused[-3] == 1.0  # fuse flag position


class TestBatchFeatures:
    def test_shape(self, gemm_sketch, rng):
        schedules = sample_initial_schedules(gemm_sketch, 5, rng)
        assert batch_features(schedules).shape == (5, FEATURE_SIZE)

    def test_empty_batch(self):
        assert batch_features([]).shape == (0, FEATURE_SIZE)

    def test_rows_match_individual_features(self, gemm_sketch, rng):
        schedules = sample_initial_schedules(gemm_sketch, 3, rng)
        stacked = batch_features(schedules)
        for row, schedule in zip(stacked, schedules):
            assert np.array_equal(row, schedule_features(schedule))


class TestLayoutCacheAndLegacyPath:
    def test_layout_memoised_on_sketch(self, gemm_sketch):
        from repro.tensor.features import _layout_of

        assert _layout_of(gemm_sketch) is _layout_of(gemm_sketch)

    def test_shared_sketches_share_layouts(self):
        from repro.caching import cached_sketches, clear_caches
        from repro.tensor.features import _layout_of

        clear_caches()
        dag = gemm(64, 64, 64)
        first = _layout_of(cached_sketches(dag)[0])
        assert _layout_of(cached_sketches(dag)[0]) is first
        clear_caches()

    def test_legacy_path_is_bit_identical(self, gemm_sketch, rng):
        from repro.caching import legacy_hot_path

        schedules = sample_initial_schedules(gemm_sketch, 6, rng)
        fast = batch_features(schedules)
        with legacy_hot_path():
            legacy = batch_features(schedules)
        assert np.array_equal(fast, legacy)
