"""Property-based tests for every workload factory.

Each factory in :mod:`repro.tensor.workloads` is exercised over randomly
drawn shapes / strides / padding / batch sizes and checked against the
closed-form ground truth:

* **output geometry** — the main stage's spatial extents match the
  convolution / matmul arithmetic, and ``output_bytes`` matches the output
  element count,
* **FLOP counts** — ``dag.flops`` equals the analytic operation count of the
  operator plus its epilogue stages,
* **invalid geometries raise** — convolution configurations whose output
  would be empty (kernel larger than the padded input, too-aggressive
  transposed-conv padding) fail loudly instead of building a nonsense DAG.

``conv2d_transpose`` and ``conv3d`` boundary behaviour was previously
untested; the explicit edge-case classes at the bottom pin it down.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor.dag import DTYPE_BYTES
from repro.tensor.workloads import (
    batch_gemm,
    conv1d,
    conv2d,
    conv2d_transpose,
    conv3d,
    elementwise,
    gemm,
    gemm_tanh,
    softmax,
)

# The factories are pure constructors (no search involved), so generous
# example counts still run in milliseconds.
COMMON = dict(max_examples=50, deadline=None)

dims = st.integers(min_value=1, max_value=64)
small_dims = st.integers(min_value=1, max_value=16)
batches = st.integers(min_value=1, max_value=8)
kernels = st.integers(min_value=1, max_value=7)
strides = st.integers(min_value=1, max_value=3)
paddings = st.integers(min_value=0, max_value=3)


def spatial_extents(dag):
    return tuple(it.extent for it in dag.main_stage.spatial_iters)


def reduction_extents(dag):
    return tuple(it.extent for it in dag.main_stage.reduction_iters)


def conv_out(size, kernel, stride, padding):
    return (size + 2 * padding - kernel) // stride + 1


class TestGemmProperties:
    @given(m=dims, k=dims, n=dims, batch=batches, bias=st.booleans())
    @settings(**COMMON)
    def test_geometry_and_flops(self, m, k, n, batch, bias):
        dag = gemm(m, k, n, batch=batch, bias=bias)
        mt = m * batch
        assert spatial_extents(dag) == (mt, n)
        assert reduction_extents(dag) == (k,)
        assert dag.output_bytes == DTYPE_BYTES * mt * n
        assert dag.input_bytes == DTYPE_BYTES * (mt * k + k * n)
        expected = 2.0 * mt * n * k + (1.0 * mt * n if bias else 0.0)
        assert dag.flops == pytest.approx(expected)
        assert dag.has_fusable_consumer == bias

    @given(b=small_dims, m=dims, k=dims, n=dims, batch=batches)
    @settings(**COMMON)
    def test_batch_gemm(self, b, m, k, n, batch):
        dag = batch_gemm(b, m, k, n, batch=batch)
        bt = b * batch
        assert spatial_extents(dag) == (bt, m, n)
        assert reduction_extents(dag) == (k,)
        assert dag.flops == pytest.approx(2.0 * bt * m * n * k)
        assert dag.output_bytes == DTYPE_BYTES * bt * m * n

    @given(m=dims, k=dims, n=dims, batch=batches)
    @settings(**COMMON)
    def test_gemm_tanh_adds_activation_flops(self, m, k, n, batch):
        plain = gemm(m, k, n, batch=batch, bias=True)
        fused = gemm_tanh(m, k, n, batch=batch)
        assert fused.flops == pytest.approx(plain.flops + 4.0 * m * batch * n)
        assert fused.tags["op"] == "gemm_tanh"


class TestConvProperties:
    @given(length=dims, ci=small_dims, co=small_dims, kernel=kernels,
           stride=strides, padding=paddings, batch=batches)
    @settings(**COMMON)
    def test_conv1d(self, length, ci, co, kernel, stride, padding, batch):
        if kernel > length + 2 * padding:
            with pytest.raises(ValueError, match="invalid convolution geometry"):
                conv1d(length, ci, co, kernel, stride, padding, batch=batch)
            return
        dag = conv1d(length, ci, co, kernel, stride, padding, batch=batch)
        out_l = conv_out(length, kernel, stride, padding)
        assert spatial_extents(dag) == (batch, co, out_l)
        assert reduction_extents(dag) == (ci, kernel)
        # conv body + ReLU epilogue (the zero-FLOP pad stage contributes none).
        expected = 2.0 * batch * co * out_l * ci * kernel + 1.0 * batch * co * out_l
        assert dag.flops == pytest.approx(expected)
        assert dag.output_bytes == DTYPE_BYTES * batch * co * out_l

    @given(h=dims, w=dims, ci=small_dims, co=small_dims, kernel=kernels,
           stride=strides, padding=paddings, batch=batches)
    @settings(**COMMON)
    def test_conv2d(self, h, w, ci, co, kernel, stride, padding, batch):
        if kernel > min(h, w) + 2 * padding:
            with pytest.raises(ValueError, match="invalid convolution geometry"):
                conv2d(h, w, ci, co, kernel, stride, padding, batch=batch)
            return
        dag = conv2d(h, w, ci, co, kernel, stride, padding, batch=batch)
        oh, ow = conv_out(h, kernel, stride, padding), conv_out(w, kernel, stride, padding)
        assert spatial_extents(dag) == (batch, co, oh, ow)
        assert reduction_extents(dag) == (ci, kernel, kernel)
        expected = (2.0 * ci * kernel * kernel + 1.0) * batch * co * oh * ow
        assert dag.flops == pytest.approx(expected)
        assert dag.output_bytes == DTYPE_BYTES * batch * co * oh * ow

    @given(channels=st.sampled_from([4, 8, 16, 32]), h=dims, kernel=st.sampled_from([1, 3]),
           batch=batches)
    @settings(**COMMON)
    def test_depthwise_conv2d(self, channels, h, kernel, batch):
        dag = conv2d(h, h, channels, channels, kernel, 1, kernel // 2,
                     batch=batch, groups=channels)
        assert dag.tags["op"] == "depthwise_conv2d"
        # Grouped reduction: each output channel reduces over ci/groups == 1.
        assert reduction_extents(dag) == (1, kernel, kernel)

    @given(d=small_dims, h=dims, w=dims, ci=small_dims, co=small_dims,
           kernel=kernels, stride=strides, padding=paddings, batch=batches)
    @settings(**COMMON)
    def test_conv3d(self, d, h, w, ci, co, kernel, stride, padding, batch):
        if kernel > min(d, h, w) + 2 * padding:
            with pytest.raises(ValueError, match="invalid convolution geometry"):
                conv3d(d, h, w, ci, co, kernel, stride, padding, batch=batch)
            return
        dag = conv3d(d, h, w, ci, co, kernel, stride, padding, batch=batch)
        od = conv_out(d, kernel, stride, padding)
        oh = conv_out(h, kernel, stride, padding)
        ow = conv_out(w, kernel, stride, padding)
        assert spatial_extents(dag) == (batch, co, od, oh, ow)
        assert reduction_extents(dag) == (ci, kernel, kernel, kernel)
        out_elems = batch * co * od * oh * ow
        assert dag.flops == pytest.approx((2.0 * ci * kernel ** 3 + 1.0) * out_elems)
        assert dag.output_bytes == DTYPE_BYTES * out_elems

    @given(h=small_dims, w=small_dims, ci=small_dims, co=small_dims,
           kernel=kernels, stride=strides, padding=paddings, batch=batches)
    @settings(**COMMON)
    def test_conv2d_transpose(self, h, w, ci, co, kernel, stride, padding, batch):
        oh = (h - 1) * stride - 2 * padding + kernel
        ow = (w - 1) * stride - 2 * padding + kernel
        if oh < 1 or ow < 1:
            with pytest.raises(ValueError, match="transposed convolution"):
                conv2d_transpose(h, w, ci, co, kernel, stride, padding, batch=batch)
            return
        dag = conv2d_transpose(h, w, ci, co, kernel, stride, padding, batch=batch)
        assert spatial_extents(dag) == (batch, co, oh, ow)
        assert reduction_extents(dag) == (ci, kernel, kernel)
        out_elems = batch * co * oh * ow
        assert dag.flops == pytest.approx(2.0 * ci * kernel * kernel * out_elems)
        assert dag.output_bytes == DTYPE_BYTES * out_elems


class TestElementwiseAndSoftmaxProperties:
    @given(shape=st.lists(small_dims, min_size=1, max_size=4),
           num_ops=st.integers(min_value=1, max_value=5), batch=batches)
    @settings(**COMMON)
    def test_elementwise(self, shape, num_ops, batch):
        dag = elementwise(shape, num_ops=num_ops, batch=batch)
        elems = batch
        for s in shape:
            elems *= s
        assert dag.flops == pytest.approx(2.0 * elems * num_ops)
        assert dag.output_bytes == DTYPE_BYTES * elems
        assert len(dag.compute_stages) == num_ops

    @given(rows=dims, cols=dims, batch=batches)
    @settings(**COMMON)
    def test_softmax(self, rows, cols, batch):
        dag = softmax(rows, cols, batch=batch)
        rt = rows * batch
        assert spatial_extents(dag) == (rt, cols)
        # max + exp + sum + normalize over every element.
        assert dag.flops == pytest.approx((1.0 + 4.0 + 1.0 + 1.0) * rt * cols)
        assert dag.input_bytes == dag.output_bytes == DTYPE_BYTES * rt * cols


class TestExplicitBoundaries:
    """Pinned edge cases for the factories' validation paths."""

    def test_elementwise_rejects_zero_ops(self):
        with pytest.raises(ValueError, match="num_ops"):
            elementwise((8, 8), num_ops=0)

    def test_conv2d_rejects_indivisible_groups(self):
        with pytest.raises(ValueError, match="divisible by groups"):
            conv2d(14, 14, 6, 8, 3, 1, 1, groups=4)

    def test_conv3d_kernel_exceeding_padded_depth_raises(self):
        # 1 + 2*1 = 3 < 5: the depth axis alone invalidates the geometry.
        with pytest.raises(ValueError, match="invalid convolution geometry"):
            conv3d(1, 56, 56, 8, 8, 5, 1, 1)

    def test_conv3d_minimal_valid_geometry(self):
        dag = conv3d(1, 1, 1, 1, 1, 1, 1, 0)
        assert spatial_extents(dag) == (1, 1, 1, 1, 1)
        assert dag.flops == pytest.approx(2.0 + 1.0)

    def test_conv2d_transpose_overpadded_raises(self):
        # (2-1)*1 - 2*2 + 1 = -2: padding eats the whole output.
        with pytest.raises(ValueError, match="transposed convolution"):
            conv2d_transpose(2, 2, 8, 8, 1, 1, 2)

    def test_conv2d_transpose_minimal_valid_geometry(self):
        dag = conv2d_transpose(1, 1, 4, 4, 1, 1, 0)
        assert spatial_extents(dag) == (1, 4, 1, 1)

    def test_conv2d_transpose_upsamples_by_stride(self):
        dag = conv2d_transpose(8, 8, 16, 8, 4, 2, 1)
        assert spatial_extents(dag) == (1, 8, 16, 16)
