"""Unit tests for tile-size factorisation helpers."""

import numpy as np
import pytest

from repro.tensor.factors import (
    all_factorizations,
    move_factor,
    prime_factors,
    product,
    random_factorization,
    smallest_prime_factor,
)


class TestProduct:
    def test_empty_sequence_is_one(self):
        assert product([]) == 1

    def test_simple_product(self):
        assert product([2, 3, 4]) == 24

    def test_accepts_numpy_ints(self):
        assert product(np.array([2, 5], dtype=np.int64)) == 10


class TestPrimeFactors:
    def test_one_has_no_factors(self):
        assert prime_factors(1) == ()

    def test_prime_number(self):
        assert prime_factors(13) == (13,)

    def test_composite(self):
        assert prime_factors(12) == (2, 2, 3)

    def test_power_of_two(self):
        assert prime_factors(1024) == (2,) * 10

    def test_large_mixed(self):
        assert prime_factors(3072) == (2,) * 10 + (3,)

    def test_product_of_factors_recovers_value(self):
        for n in (2, 6, 36, 97, 224, 768, 1000):
            assert product(prime_factors(n)) == n

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prime_factors(0)


class TestSmallestPrimeFactor:
    def test_even(self):
        assert smallest_prime_factor(30) == 2

    def test_odd_composite(self):
        assert smallest_prime_factor(21) == 3

    def test_prime(self):
        assert smallest_prime_factor(17) == 17

    def test_rejects_one(self):
        with pytest.raises(ValueError):
            smallest_prime_factor(1)


class TestAllFactorizations:
    def test_single_level(self):
        assert all_factorizations(12, 1) == [[12]]

    def test_two_levels_cover_divisor_pairs(self):
        pairs = all_factorizations(6, 2)
        assert sorted(tuple(p) for p in pairs) == [(1, 6), (2, 3), (3, 2), (6, 1)]

    def test_every_factorization_multiplies_back(self):
        for fact in all_factorizations(24, 3):
            assert product(fact) == 24

    def test_limit_caps_enumeration(self):
        assert len(all_factorizations(1024, 4, limit=10)) == 10

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            all_factorizations(8, 0)


class TestRandomFactorization:
    def test_product_equals_extent(self, rng):
        for extent in (1, 7, 64, 224, 1024):
            sizes = random_factorization(extent, 4, rng)
            assert len(sizes) == 4
            assert product(sizes) == extent

    def test_extent_one_gives_all_ones(self, rng):
        assert random_factorization(1, 3, rng) == [1, 1, 1]

    def test_covers_multiple_distinct_factorizations(self, rng):
        seen = {tuple(random_factorization(64, 4, rng)) for _ in range(200)}
        assert len(seen) > 5

    def test_single_level_returns_extent(self, rng):
        assert random_factorization(36, 1, rng) == [36]


class TestMoveFactor:
    def test_moves_smallest_prime(self):
        assert move_factor([12, 1, 1], 0, 2) == [6, 1, 2]

    def test_source_of_one_is_noop(self):
        assert move_factor([1, 8], 0, 1) == [1, 8]

    def test_same_slot_is_noop(self):
        assert move_factor([4, 4], 1, 1) == [4, 4]

    def test_preserves_product(self):
        sizes = [8, 3, 5]
        moved = move_factor(sizes, 2, 0)
        assert product(moved) == product(sizes)

    def test_does_not_mutate_input(self):
        sizes = [6, 2]
        move_factor(sizes, 0, 1)
        assert sizes == [6, 2]

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            move_factor([2, 2], 0, 5)
