"""Unit tests for the operator workload factories."""

import pytest

from repro.tensor.workloads import (
    batch_gemm,
    conv1d,
    conv2d,
    conv2d_transpose,
    conv3d,
    elementwise,
    gemm,
    gemm_tanh,
    softmax,
)


class TestGemm:
    def test_shape_metadata(self):
        dag = gemm(128, 256, 64)
        assert dag.tags["op"] == "gemm"
        assert dag.tags["shape"] == (128, 256, 64)

    def test_batch_scales_rows_and_flops(self):
        single = gemm(128, 128, 128, batch=1, bias=False)
        batched = gemm(128, 128, 128, batch=16, bias=False)
        assert batched.flops == pytest.approx(16 * single.flops)

    def test_main_stage_iterators(self):
        dag = gemm(32, 16, 8)
        extents = {it.name: it.extent for it in dag.main_stage.iters}
        assert extents == {"i": 32, "j": 8, "k": 16}


class TestBatchGemm:
    def test_flops(self):
        dag = batch_gemm(12, 128, 64, 128)
        assert dag.flops == pytest.approx(2.0 * 12 * 128 * 64 * 128)

    def test_batch_dimension_is_spatial(self):
        dag = batch_gemm(4, 8, 8, 8)
        spatial = [it.name for it in dag.main_stage.spatial_iters]
        assert "b" in spatial


class TestGemmTanh:
    def test_has_tanh_stage(self):
        dag = gemm_tanh(1, 768, 768)
        assert any(s.name == "tanh" for s in dag.stages)
        assert dag.tags["op"] == "gemm_tanh"


class TestConv1d:
    def test_output_length(self):
        dag = conv1d(256, 64, 128, 3, 2, 1)
        ol = next(it for it in dag.main_stage.iters if it.name == "ol")
        assert ol.extent == (256 + 2 * 1 - 3) // 2 + 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            conv1d(2, 4, 4, 7, 1, 0)


class TestConv2d:
    def test_output_spatial_extents(self):
        dag = conv2d(224, 224, 3, 64, 7, 2, 3)
        extents = {it.name: it.extent for it in dag.main_stage.spatial_iters}
        assert extents["oh"] == 112 and extents["ow"] == 112

    def test_flops_formula(self):
        dag = conv2d(14, 14, 256, 256, 3, 1, 1)
        conv_flops = 2.0 * 1 * 256 * 14 * 14 * 256 * 3 * 3
        relu_flops = 1 * 256 * 14 * 14
        pad_flops = 0
        assert dag.flops == pytest.approx(conv_flops + relu_flops + pad_flops)

    def test_depthwise_groups_shrink_reduction(self):
        dag = conv2d(14, 14, 32, 32, 3, 1, 1, groups=32)
        ci = next(it for it in dag.main_stage.reduction_iters if it.name == "ci")
        assert ci.extent == 1
        assert dag.tags["op"] == "depthwise_conv2d"

    def test_bad_groups_rejected(self):
        with pytest.raises(ValueError):
            conv2d(14, 14, 30, 32, 3, 1, 1, groups=4)


class TestConv3d:
    def test_five_spatial_iters(self):
        dag = conv3d(16, 14, 14, 8, 8, 3, 1, 1)
        assert len(dag.main_stage.spatial_iters) == 5
        assert len(dag.main_stage.reduction_iters) == 4


class TestConv2dTranspose:
    def test_output_size(self):
        dag = conv2d_transpose(4, 4, 512, 256, 4, 2, 1)
        extents = {it.name: it.extent for it in dag.main_stage.spatial_iters}
        assert extents["oh"] == (4 - 1) * 2 - 2 * 1 + 4

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            conv2d_transpose(1, 1, 4, 4, 1, 1, 3)


class TestSoftmax:
    def test_stage_chain(self):
        dag = softmax(64, 32)
        names = [s.name for s in dag.stages]
        assert names == ["logits", "row_max", "exp", "row_sum", "normalize"]

    def test_batch_scales_rows(self):
        assert softmax(64, 32, batch=4).flops == pytest.approx(4 * softmax(64, 32).flops)


class TestElementwise:
    def test_num_ops_controls_stage_count(self):
        dag = elementwise([64, 64], num_ops=3)
        assert len(dag.compute_stages) == 3

    def test_rejects_zero_ops(self):
        with pytest.raises(ValueError):
            elementwise([8, 8], num_ops=0)

    def test_flops_scale_with_ops(self):
        one = elementwise([32, 32], num_ops=1).flops
        three = elementwise([32, 32], num_ops=3).flops
        assert three == pytest.approx(3 * one)
