"""Unit tests for initial schedule sampling."""

import numpy as np
import pytest

from repro.tensor.factors import product
from repro.tensor.sampler import sample_initial_schedules, sample_schedule
from repro.tensor.schedule import GPU_UNROLL_DEPTHS
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import conv2d, softmax


class TestSampleSchedule:
    def test_schedule_is_valid(self, gemm_sketch, rng):
        for _ in range(20):
            schedule = sample_schedule(gemm_sketch, rng)
            for sizes, (_n, _k, extent, _l) in zip(schedule.tile_sizes, gemm_sketch.tiled_iters):
                assert product(sizes) == extent
            assert 0 <= schedule.num_parallel <= schedule.max_parallel
            assert 0 <= schedule.compute_at_index < len(schedule.dag.compute_at_candidates())

    def test_custom_unroll_depths(self, gemm_sketch, rng):
        schedule = sample_schedule(gemm_sketch, rng, GPU_UNROLL_DEPTHS)
        assert schedule.unroll_depths == GPU_UNROLL_DEPTHS

    def test_deterministic_given_seed(self, gemm_sketch):
        a = sample_schedule(gemm_sketch, np.random.default_rng(7))
        b = sample_schedule(gemm_sketch, np.random.default_rng(7))
        assert a == b


class TestSampleInitialSchedules:
    def test_exact_count(self, gemm_sketch, rng):
        schedules = sample_initial_schedules(gemm_sketch, 17, rng)
        assert len(schedules) == 17

    def test_dedup_yields_distinct_schedules(self, gemm_sketch, rng):
        schedules = sample_initial_schedules(gemm_sketch, 32, rng)
        signatures = {s.signature() for s in schedules}
        assert len(signatures) >= 30  # near-unique in a huge space

    def test_small_space_still_returns_requested_count(self, rng):
        # A tiny softmax has a very small schedule space; duplicates are allowed.
        sketch = generate_sketches(softmax(2, 2))[0]
        schedules = sample_initial_schedules(sketch, 64, rng)
        assert len(schedules) == 64

    def test_rejects_zero_count(self, gemm_sketch, rng):
        with pytest.raises(ValueError):
            sample_initial_schedules(gemm_sketch, 0, rng)

    def test_conv_sampling(self, rng):
        sketch = generate_sketches(conv2d(14, 14, 32, 64, 3, 1, 1))[1]
        schedules = sample_initial_schedules(sketch, 8, rng)
        assert all(s.sketch.key == sketch.key for s in schedules)
