"""Unit tests for schedule lowering / pretty-printing."""

import pytest

from repro.tensor.factors import product
from repro.tensor.lowering import loop_structure, lower_schedule
from repro.tensor.sampler import sample_schedule
from repro.tensor.schedule import Schedule
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import conv2d, gemm


@pytest.fixture
def schedule(gemm_sketch):
    tile_sizes = [[8, 1, 4, 4], [4, 2, 1, 16], [16, 8]]
    return Schedule(gemm_sketch, tile_sizes, compute_at_index=2, num_parallel=2, unroll_index=1)


class TestLoopStructure:
    def test_loop_count_matches_tile_slots(self, schedule):
        loops = loop_structure(schedule)
        assert len(loops) == schedule.num_tile_slots

    def test_loop_extents_multiply_to_iteration_space(self, schedule):
        loops = loop_structure(schedule)
        total = product([l["extent"] for l in loops])
        assert total == schedule.dag.main_stage.iteration_space

    def test_outer_loops_are_parallel(self, schedule):
        loops = loop_structure(schedule)
        assert loops[0]["annotation"] == "parallel"
        assert loops[1]["annotation"] == "parallel"
        assert loops[2]["annotation"] == ""

    def test_innermost_loop_vectorized(self, schedule):
        loops = loop_structure(schedule)
        assert loops[-1]["annotation"] == "vectorize"
        assert loops[-1]["kind"] == "spatial"

    def test_unroll_annotation_present(self, schedule):
        loops = loop_structure(schedule)
        assert any("unroll" in l["annotation"] for l in loops)

    def test_random_schedules_structurally_consistent(self, rng):
        for dag in (gemm(64, 32, 16), conv2d(14, 14, 16, 32, 3, 1, 1)):
            sketch = generate_sketches(dag)[0]
            for _ in range(5):
                s = sample_schedule(sketch, rng)
                loops = loop_structure(s)
                assert product([l["extent"] for l in loops]) == dag.main_stage.iteration_space


class TestLowerSchedule:
    def test_contains_workload_and_loops(self, schedule):
        text = lower_schedule(schedule)
        assert schedule.dag.name in text
        assert "for i.0 in range(8):" in text
        assert "parallel" in text and "vectorize" in text

    def test_fused_sketch_mentions_fused_consumer(self, rng):
        dag = gemm(64, 64, 64)
        sketch = next(s for s in generate_sketches(dag) if s.fuse_consumer)
        text = lower_schedule(sample_schedule(sketch, rng))
        assert "fused consumer" in text

    def test_cache_write_sketch_mentions_write_back(self, rng):
        dag = gemm(64, 64, 64, bias=False)
        sketch = next(s for s in generate_sketches(dag) if s.cache_write)
        text = lower_schedule(sample_schedule(sketch, rng))
        assert "cache write-back" in text
        assert "alloc_cache" in text

    def test_plain_sketch_has_separate_epilogue(self, rng):
        dag = gemm(64, 64, 64)
        sketch = next(s for s in generate_sketches(dag) if s.key == "tiling")
        text = lower_schedule(sample_schedule(sketch, rng))
        assert "separate epilogue" in text

    def test_rfactor_sketch_mentions_rfactor(self, rng):
        dag = gemm(64, 256, 64)
        sketch = next(s for s in generate_sketches(dag) if s.rfactor)
        text = lower_schedule(sample_schedule(sketch, rng))
        assert "rfactor" in text

    def test_inlined_stages_listed_for_conv(self, rng):
        dag = conv2d(14, 14, 16, 32, 3, 1, 1)
        sketch = generate_sketches(dag)[0]
        text = lower_schedule(sample_schedule(sketch, rng))
        assert "inlined:  pad" in text
