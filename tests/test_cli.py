"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_op_defaults(self):
        args = build_parser().parse_args(["tune-op"])
        assert args.op == "GEMM-L"
        assert args.scheduler == "harl"
        assert args.target == "cpu"

    def test_unknown_operator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune-op", "--op", "GEMM-XL"])


class TestCommands:
    def test_tune_op_harl(self, capsys):
        code = main([
            "tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05",
            "--scheduler", "harl", "--show-program",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "gemm" in out
        assert "for " in out  # lowered program printed

    def test_tune_op_ansor(self, capsys):
        code = main(["tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05",
                     "--scheduler", "ansor"])
        assert code == 0
        assert "ansor" in capsys.readouterr().out

    def test_tune_op_autotvm(self, capsys):
        code = main(["tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05",
                     "--scheduler", "autotvm"])
        assert code == 0
        assert "autotvm" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(["compare", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "harl" in out and "ansor" in out

    def test_tune_network(self, capsys):
        code = main([
            "tune-network", "--network", "bert", "--trials", "90", "--scale", "0.05",
            "--scheduler", "harl",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bert_base_b1" in out
        assert "end-to-end latency" in out
