"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tune_op_defaults(self):
        args = build_parser().parse_args(["tune-op"])
        assert args.op == "GEMM-L"
        assert args.scheduler == "harl"
        assert args.target == "cpu"

    def test_unknown_operator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tune-op", "--op", "GEMM-XL"])


class TestCommands:
    def test_tune_op_harl(self, capsys):
        code = main([
            "tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05",
            "--scheduler", "harl", "--show-program",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "gemm" in out
        assert "for " in out  # lowered program printed

    def test_tune_op_ansor(self, capsys):
        code = main(["tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05",
                     "--scheduler", "ansor"])
        assert code == 0
        assert "ansor" in capsys.readouterr().out

    def test_tune_op_autotvm(self, capsys):
        code = main(["tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05",
                     "--scheduler", "autotvm"])
        assert code == 0
        assert "autotvm" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(["compare", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "harl" in out and "ansor" in out

    def test_tune_network(self, capsys):
        code = main([
            "tune-network", "--network", "bert", "--trials", "90", "--scale", "0.05",
            "--scheduler", "harl",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bert_base_b1" in out
        assert "end-to-end latency" in out


class TestMeasurementPipelineFlags:
    def test_num_workers_matches_serial(self, capsys):
        base = ["tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05"]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--num-workers", "3"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out  # identical table incl. best latency

    def test_records_out_and_resume(self, capsys, tmp_path):
        from repro.records import RecordStore

        log = tmp_path / "records.jsonl"
        base = ["tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05"]
        assert main(base + ["--records-out", str(log)]) == 0
        capsys.readouterr()
        store = RecordStore.load(log)
        assert len(store.query(kind="measure")) == 8
        assert len(store.query(kind="result")) == 1

        assert main(base + ["--resume-from", str(log),
                            "--records-out", str(log)]) == 0
        assert len(RecordStore.load(log).query(kind="measure")) == 16

    def test_compare_records_dir(self, capsys, tmp_path):
        from repro.records import RecordStore

        code = main(["compare", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05",
                     "--records-out", str(tmp_path / "cmp")])
        assert code == 0
        for name in ("harl", "ansor"):
            store = RecordStore.load(tmp_path / "cmp" / f"{name}.jsonl")
            assert len(store.query(kind="measure")) == 8
            assert len(store.query(kind="result")) == 1  # final result line lands in the log

    def test_resume_works_for_baseline_schedulers(self, capsys, tmp_path):
        log = tmp_path / "ansor.jsonl"
        base = ["tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05",
                "--scheduler", "ansor"]
        assert main(base + ["--records-out", str(log)]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume-from", str(log)]) == 0
        second = capsys.readouterr().out

        def best_latency(out):
            return float(out.splitlines()[2].split()[2])

        # the resumed run starts from the recorded best, so it cannot regress
        assert best_latency(second) <= best_latency(first)

    def test_resume_from_missing_file_clean_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tune-op", "--op", "GEMM-S", "--trials", "8",
                  "--resume-from", "does-not-exist.jsonl"])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err


class TestServingCommands:
    def test_serve_demo_then_registry_hits(self, capsys, tmp_path):
        registry = tmp_path / "registry"
        base = ["serve", "--trials", "8", "--scale", "0.05",
                "--registry", str(registry)]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert "coalesced" in first  # duplicate demo GEMMs share one job
        assert "jobs created: 2" in first

        assert main(base) == 0  # second run answers everything from disk
        second = capsys.readouterr().out
        assert "registry-hit" in second
        assert "jobs created: 0" in second

    def test_serve_requests_file(self, capsys, tmp_path):
        import json as json_mod

        requests = tmp_path / "requests.json"
        requests.write_text(json_mod.dumps([
            {"op": "GEMM-S", "batch": 1, "trials": 8, "tenant": "t1"},
            {"op": "GEMM-S", "batch": 1, "trials": 8, "tenant": "t2"},
        ]))
        code = main(["serve", "--scale", "0.05", "--requests", str(requests)])
        out = capsys.readouterr().out
        assert code == 0
        assert "t1" in out and "t2" in out
        assert "coalesced" in out

    def test_tune_op_registry_roundtrip_and_query(self, capsys, tmp_path):
        registry = tmp_path / "registry"
        base = ["tune-op", "--op", "GEMM-S", "--trials", "8", "--scale", "0.05",
                "--registry", str(registry)]
        assert main(base) == 0
        capsys.readouterr()

        assert main(["query", "--registry", str(registry), "--op", "GEMM-S"]) == 0
        out = capsys.readouterr().out
        assert "exact hit" in out and "none" not in out.split("exact hit")[1].split("\n")[0]

        assert main(["query", "--registry", str(registry), "--op", "C2D"]) == 0
        out = capsys.readouterr().out
        assert "exact hit:   none" in out
        assert "nearest relative" in out  # the GEMM entry is offered as relative

    def test_registry_maintenance_commands(self, capsys, tmp_path):
        registry = tmp_path / "registry"
        assert main(["tune-op", "--op", "GEMM-S", "--trials", "8",
                     "--scale", "0.05", "--registry", str(registry)]) == 0
        capsys.readouterr()

        assert main(["registry", "stats", "--registry", str(registry)]) == 0
        assert "entries: 1" in capsys.readouterr().out.replace(" ", " ")

        export = tmp_path / "export.jsonl"
        assert main(["registry", "export", "--registry", str(registry),
                     "--file", str(export)]) == 0
        capsys.readouterr()
        assert export.exists()

        fresh = tmp_path / "fresh"
        assert main(["registry", "import", "--registry", str(fresh),
                     "--file", str(export)]) == 0
        assert "imported 1" in capsys.readouterr().out

        assert main(["registry", "compact", "--registry", str(registry)]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_registry_export_requires_file(self, capsys, tmp_path):
        assert main(["registry", "export",
                     "--registry", str(tmp_path / "r")]) == 2
        assert "--file" in capsys.readouterr().err


class TestTargetCommands:
    def test_targets_list_shows_all_presets(self, capsys):
        from repro.hardware.catalog import default_catalog

        assert main(["targets", "list"]) == 0
        out = capsys.readouterr().out
        names = default_catalog().names()
        assert len(names) >= 10
        for name in names:
            assert name in out

    def test_targets_describe(self, capsys):
        assert main(["targets", "describe", "rpi4-a72"]) == 0
        out = capsys.readouterr().out
        assert "num_cores: 4" in out
        assert "embedding" in out
        assert "nearest target" in out

    def test_targets_describe_requires_name(self, capsys):
        assert main(["targets", "describe"]) == 2
        assert "name" in capsys.readouterr().err

    def test_targets_describe_unknown_name(self, capsys):
        assert main(["targets", "describe", "abacus-9000"]) == 2
        assert "known" in capsys.readouterr().err

    def test_tune_op_accepts_catalog_target(self, capsys):
        code = main(["tune-op", "--op", "GEMM-S", "--trials", "8",
                     "--scale", "0.05", "--target", "epyc-7543"])
        assert code == 0
        assert "gemm" in capsys.readouterr().out

    def test_unknown_target_clean_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tune-op", "--op", "GEMM-S", "--trials", "8",
                  "--target", "abacus-9000"])
        assert excinfo.value.code == 2
        assert "known targets" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_prints_report_and_writes_csv(self, capsys, tmp_path):
        report = tmp_path / "sweep.csv"
        code = main(["sweep", "--targets", "xeon-6226r,epyc-7543",
                     "--ops", "GEMM-S", "--trials", "8", "--scale", "0.05",
                     "--report", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "xeon-6226r" in out and "epyc-7543" in out
        assert "% roofline" in out
        # The second target's runs transfer from the first.
        assert "warm-started across targets" in out
        assert report.exists()
        assert "warm-started from" in report.read_text().splitlines()[0]

    def test_sweep_populates_registry(self, capsys, tmp_path):
        registry = tmp_path / "registry"
        assert main(["sweep", "--targets", "xeon-6226r,epyc-7543",
                     "--ops", "GEMM-S", "--trials", "8", "--scale", "0.05",
                     "--registry", str(registry)]) == 0
        capsys.readouterr()
        assert main(["registry", "stats", "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out

    def test_sweep_rejects_unknown_op(self, capsys):
        assert main(["sweep", "--ops", "GEMM-XXL", "--trials", "8"]) == 2
        assert "operator class" in capsys.readouterr().err

    def test_sweep_honors_single_target_flag(self, capsys):
        # Regression: --target (without --targets) sweeps exactly that target.
        code = main(["sweep", "--target", "epyc-7543", "--ops", "GEMM-S",
                     "--trials", "8", "--scale", "0.05"])
        out = capsys.readouterr().out
        assert code == 0
        assert "epyc-7543" in out
        assert "xeon-6226r" not in out and "rtx-3090" not in out


class TestNetworkCommand:
    def test_network_list(self, capsys):
        assert main(["network", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("bert", "resnet50", "mobilenet_v2"):
            assert name in out
        assert "subgraphs" in out

    def test_network_tune_then_registry_hits(self, capsys, tmp_path):
        registry = tmp_path / "registry"
        base = ["network", "tune", "--network", "resnet50", "--trials", "120",
                "--scale", "0.05", "--registry", str(registry)]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert "end-to-end f(S)" in first
        assert "inf" not in first.split("end-to-end f(S)")[1]  # finite f(S)
        assert "registry hits" in first

        # Second run on the same registry answers every task in O(1).
        assert main(base) == 0
        second = capsys.readouterr().out
        assert "registry-hit" in second
        assert "(0 trials, 0 jobs" in second

    def test_network_tune_catalog_target_and_json(self, capsys, tmp_path):
        import json as json_mod

        out_json = tmp_path / "report.json"
        assert main(["network", "tune", "--network", "resnet50",
                     "--target", "epyc-7543", "--trials", "120",
                     "--scale", "0.05", "--policy", "gradient",
                     "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "epyc-7543" in out and "policy=gradient" in out
        data = json_mod.loads(out_json.read_text())
        assert data["target"] == "epyc-7543"
        assert data["final_latency"] < float("inf")
        assert len(data["tasks"]) == 22

    def test_cross_network_warm_start_hits(self, capsys, tmp_path):
        registry = tmp_path / "registry"
        assert main(["network", "tune", "--network", "resnet50",
                     "--trials", "120", "--scale", "0.05",
                     "--registry", str(registry)]) == 0
        capsys.readouterr()
        assert main(["network", "tune", "--network", "mobilenet_v2",
                     "--trials", "200", "--scale", "0.05",
                     "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        # MobileNet's conv tasks warm-start from the ResNet entries.
        assert "warm:" in out or "transfer:" in out
        assert "resnet" in out.split("warm-started from")[1]

    def test_network_report_coverage(self, capsys, tmp_path):
        registry = tmp_path / "registry"
        assert main(["network", "tune", "--network", "resnet50",
                     "--trials", "120", "--scale", "0.05",
                     "--registry", str(registry)]) == 0
        capsys.readouterr()
        assert main(["network", "report", "--network", "resnet50",
                     "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "registry coverage" in out
        assert "fully covered" in out

        assert main(["network", "report", "--network", "bert",
                     "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "0/10 tasks covered" in out

    def test_network_report_requires_registry(self, capsys):
        assert main(["network", "report", "--network", "resnet50"]) == 2
        assert "--registry" in capsys.readouterr().err


class TestNetworkSweepCommand:
    def test_sweep_networks_prints_and_saves(self, capsys, tmp_path):
        report = tmp_path / "networks.csv"
        registry = tmp_path / "registry"
        code = main(["sweep", "--networks", "resnet50",
                     "--targets", "xeon-6226r,epyc-7543", "--trials", "120",
                     "--scale", "0.05", "--registry", str(registry),
                     "--report", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "network fleet sweep" in out
        assert "xeon-6226r" in out and "epyc-7543" in out
        assert "reused registry knowledge" in out
        assert report.exists()
        assert "f(S) (ms)" in report.read_text().splitlines()[0]

    def test_sweep_rejects_unknown_network(self, capsys):
        assert main(["sweep", "--networks", "alexnet", "--trials", "8"]) == 2
        assert "unknown network" in capsys.readouterr().err
