"""End-to-end integration tests across the whole stack.

These are the slowest tests in the suite (a few seconds each): they run real
head-to-head tuning comparisons at a very small scale and check the paper's
qualitative claims — HARL should not lose badly to the baseline, adaptive
stopping should concentrate critical steps late in the tracks, and the whole
public API should be reachable from the package root.
"""

import numpy as np
import pytest

import repro
from repro import AnsorScheduler, HARLConfig, HARLScheduler, gemm
from repro.baselines.ansor import AnsorConfig
from repro.experiments.metrics import normalized_performance, normalized_search_time
from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import softmax


@pytest.fixture(scope="module")
def small_config():
    return HARLConfig(
        window_size=5,
        elimination_ratio=0.5,
        min_tracks=4,
        num_tracks=16,
        episode_length=10,
        measures_per_round=8,
        minibatch_size=64,
        ucb_window=32,
    )


@pytest.fixture(scope="module")
def gemm_comparison(small_config):
    """One shared HARL-vs-Ansor comparison on a mid-size GEMM."""
    dag = gemm(512, 512, 512)
    harl = HARLScheduler(config=small_config, seed=0).tune(dag, n_trials=48)
    ansor = AnsorScheduler(config=AnsorConfig.from_harl(small_config), seed=0).tune(dag, n_trials=48)
    return {"harl": harl, "ansor": ansor}


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("HARLScheduler", "AnsorScheduler", "gemm", "build_bert", "cpu_target"):
            assert hasattr(repro, name)

    def test_quickstart_snippet_runs(self, small_config):
        scheduler = HARLScheduler(config=small_config, seed=0)
        result = scheduler.tune(repro.gemm(128, 128, 128), n_trials=8)
        assert result.best_schedule is not None


class TestHeadToHead:
    def test_both_schedulers_produce_valid_results(self, gemm_comparison):
        for result in gemm_comparison.values():
            assert np.isfinite(result.best_latency)
            assert result.best_latency > 0
            assert result.trials_used >= 48

    def test_harl_is_competitive_with_ansor(self, gemm_comparison):
        """The paper claims HARL outperforms Ansor; at this tiny scale we only
        require HARL not to lose by more than 15%."""
        perf = normalized_performance(gemm_comparison)
        assert perf["harl"] >= 0.85

    def test_search_time_metric_well_formed(self, gemm_comparison):
        times = normalized_search_time(gemm_comparison, baseline="ansor")
        assert set(times) == {"harl", "ansor"}
        assert 0 < times["harl"] <= 1.0
        assert 0 < times["ansor"] <= 1.0
        assert max(times.values()) == pytest.approx(1.0)


class TestAdaptiveStoppingBehaviour:
    def test_adaptive_tracks_have_varied_lengths(self, small_config):
        dag = gemm(256, 256, 256, name="integration_adaptive")
        harl = HARLScheduler(config=small_config, seed=1)
        result = harl.tune(dag, n_trials=24)
        lengths = result.extras["track_lengths"]
        assert max(lengths) > min(lengths)

    def test_adaptive_critical_steps_skew_late(self, small_config):
        """Adaptive stopping should push best-score positions later in each
        track than fixed-length search (the Fig. 7b effect), or at least not
        earlier."""
        dag_a = gemm(256, 256, 256, name="integration_critical_a")
        dag_f = gemm(256, 256, 256, name="integration_critical_f")
        adaptive = HARLScheduler(config=small_config, seed=2).tune(dag_a, n_trials=32)
        fixed = HARLScheduler(config=small_config, seed=2, adaptive_stopping=False).tune(
            dag_f, n_trials=32
        )
        mean_adaptive = float(np.mean(adaptive.extras["critical_positions"]))
        mean_fixed = float(np.mean(fixed.extras["critical_positions"]))
        assert mean_adaptive >= mean_fixed - 0.1


class TestEndToEndNetwork:
    def test_network_comparison_runs(self, small_config):
        network = NetworkGraph(
            name="integration-net",
            subgraphs=[
                Subgraph("mm", gemm(256, 256, 256, name="int_net_mm"), weight=6, similarity_group="gemm"),
                Subgraph("mm2", gemm(128, 512, 128, name="int_net_mm2"), weight=2, similarity_group="gemm"),
                Subgraph("soft", softmax(512, 128, name="int_net_soft"), weight=2, similarity_group="softmax"),
            ],
        )
        harl = HARLScheduler(config=small_config, seed=0).tune_network(network, n_trials=72)
        ansor = AnsorScheduler(config=AnsorConfig.from_harl(small_config), seed=0).tune_network(
            network, n_trials=72
        )
        assert np.isfinite(harl.best_latency) and np.isfinite(ansor.best_latency)
        # At this tiny trial budget the MAB's exploration overhead is still
        # being amortised, so we only require rough competitiveness here; the
        # benchmark harness (Fig. 8) evaluates the real end-to-end claim at a
        # larger budget.
        assert harl.best_latency <= ansor.best_latency * 1.75
        # Every task received some allocation under the MAB.
        assert all(v > 0 for v in harl.allocations.values())
