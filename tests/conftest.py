"""Shared fixtures for the test suite.

All tuning-related fixtures use deliberately tiny configurations (a handful of
schedule tracks, small windows, few measured candidates) so the whole suite
runs in well under a minute while still exercising the real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import HARLConfig
from repro.hardware.measurer import Measurer
from repro.hardware.target import cpu_target, gpu_target
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import conv2d, gemm, softmax


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def tiny_config():
    """A very small HARL configuration for fast unit tests."""
    return HARLConfig(
        window_size=4,
        elimination_ratio=0.5,
        min_tracks=2,
        num_tracks=8,
        episode_length=8,
        measures_per_round=4,
        minibatch_size=32,
        replay_capacity=512,
        ucb_window=16,
    )


@pytest.fixture
def cpu():
    return cpu_target()


@pytest.fixture
def gpu():
    return gpu_target()


@pytest.fixture
def gemm_dag():
    return gemm(128, 128, 128)


@pytest.fixture
def conv_dag():
    return conv2d(14, 14, 32, 32, 3, 1, 1)


@pytest.fixture
def softmax_dag():
    return softmax(256, 128)


@pytest.fixture
def gemm_sketch(gemm_dag):
    return generate_sketches(gemm_dag)[0]


@pytest.fixture
def measurer(cpu):
    return Measurer(cpu, seed=0)
