"""The observability layer as wired into the production stack.

Pins the acceptance-critical behaviours: spans opened in ParallelMeasurer
worker threads attach to the correct batch parent, the TuningService
publishes its hit/coalesce counters and submit→finish latency histogram,
legacy per-instance counters stay in lockstep with their global mirrors, and
the obligation gate report carries wall-clock durations per row.
"""

import pytest

from repro import obs
from repro.faults import FaultPlan, FaultSpec
from repro.faults.obligations import OBLIGATIONS, GateReport, ObligationOutcome
from repro.hardware.measurer import Measurer
from repro.hardware.parallel import ParallelMeasurer
from repro.records import RecordStore
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import TuningRequest, TuningService
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.workloads import gemm


def _spans(tracer, name):
    return [r for r in tracer.records if r["kind"] == "span" and r["name"] == name]


def _counter(name):
    metric = obs.default_registry().get(name)
    return metric.value if metric is not None else 0


class TestParallelMeasurerSpans:
    def test_chunk_spans_attach_to_batch_parent(self, cpu, gemm_sketch, rng):
        schedules = sample_initial_schedules(gemm_sketch, 16, rng)
        with obs.tracing() as tracer:
            with ParallelMeasurer(cpu, num_workers=4, seed=3) as pm:
                pm.measure(schedules)
        (batch,) = _spans(tracer, "measure.batch")
        chunks = _spans(tracer, "measure.chunk")
        # Worker threads do not inherit contextvars; the explicit parent
        # passing must still attach every chunk to this batch.
        assert len(chunks) >= 2
        assert all(chunk["parent"] == batch["id"] for chunk in chunks)
        assert len({chunk["id"] for chunk in chunks}) == len(chunks)
        assert batch["attrs"]["schedules"] == 16

    def test_batch_metrics_without_tracing(self, cpu, gemm_sketch, rng):
        schedules = sample_initial_schedules(gemm_sketch, 8, rng)
        with ParallelMeasurer(cpu, num_workers=2, seed=3) as pm:
            pm.measure(schedules)
        assert _counter("parallel.batches") == 1
        hist = obs.default_registry().get("parallel.batch_seconds")
        assert hist.count == 1


class TestServiceInstrumentation:
    def _renamed(self, n):
        return [gemm(64, 64, 64, name=f"client_{i}") for i in range(n)]

    def test_counters_and_latency_histogram(self, tiny_config):
        service = TuningService(
            registry=ScheduleRegistry(), config=tiny_config, seed=0
        )
        # Wave 1: two structurally identical requests — one job, one coalesce.
        wave1 = [TuningRequest(dag=dag, n_trials=8) for dag in self._renamed(2)]
        service.process(wave1)
        # Wave 2: same structure again — answered O(1) from the registry.
        service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=8)])

        assert _counter("service.requests") == 3
        assert _counter("service.jobs_created") == 1
        assert _counter("service.coalesced") == 1
        assert _counter("service.registry_hits") == 1
        assert _counter("service.jobs_finished") == 1
        # Global mirrors stay in lockstep with the instance counters.
        assert _counter("service.coalesced") == service.coalesced_requests
        assert _counter("service.registry_hits") == service.registry_hits

        hist = obs.default_registry().get("service.submit_to_finish_seconds")
        assert hist.count == 3  # every handle finished through the histogram
        assert hist.percentile(50) <= hist.percentile(95) <= hist.percentile(99)

    def test_round_and_finish_spans_emitted(self, tiny_config):
        service = TuningService(
            registry=ScheduleRegistry(), config=tiny_config, seed=0
        )
        with obs.tracing() as tracer:
            service.process([TuningRequest(dag=gemm(64, 64, 64), n_trials=8)])
        rounds = _spans(tracer, "service.round")
        assert rounds
        assert all(r["attrs"]["workload"].startswith("gemm") for r in rounds)
        assert all("trials" in r["attrs"] for r in rounds)
        (finish,) = _spans(tracer, "service.finish")
        assert finish["attrs"]["workload"].startswith("gemm")

    def test_registry_lookup_counters(self, cpu):
        registry = ScheduleRegistry()
        assert registry.lookup("no-such-fingerprint", cpu, k=0).entry is None
        assert _counter("registry.lookups") == 1
        assert _counter("registry.misses") == 1
        assert _counter("registry.hits") == 0


class TestRecordStoreInstrumentation:
    def test_flush_histogram_and_slow_flush_mirror(self, cpu, gemm_sketch, rng, tmp_path):
        store = RecordStore(tmp_path / "records.jsonl")
        store.slow_flush_threshold = 0.0  # every append counts as slow
        measurer = Measurer(cpu, seed=0, record_store=store)
        measurer.measure(sample_initial_schedules(gemm_sketch, 4, rng))
        store.close()

        appends = _counter("records.appends")
        assert appends == 4
        hist = obs.default_registry().get("records.flush_seconds")
        assert hist.count == appends
        # The per-instance counter (used by fault tests) and the global
        # mirror must agree.
        assert store.slow_flushes == appends
        assert _counter("records.slow_flushes") == store.slow_flushes
        assert _counter("records.flush_failures") == 0


class TestFaultInstrumentation:
    def test_fired_fault_counts_and_traces(self):
        plan = FaultPlan([FaultSpec("registry.append", "crash", at=0, times=1)])
        with obs.tracing() as tracer:
            assert plan.poll("registry.append") is not None
            assert plan.poll("registry.append") is None  # window exhausted
        assert _counter("faults.injected") == 1
        (event,) = [r for r in tracer.records if r["kind"] == "event"]
        assert event["name"] == "fault.injected"
        assert event["attrs"]["point"] == "registry.append"
        assert event["attrs"]["kind"] == "crash"


class TestGateReportDurations:
    def test_rows_and_report_carry_wall_clock(self):
        obligation = OBLIGATIONS[0]
        report = GateReport(seeds=[0, 1])
        report.outcomes = [
            ObligationOutcome(obligation, seed=0, passed=True, message="ok",
                              duration_s=0.5),
            ObligationOutcome(obligation, seed=1, passed=True, message="ok",
                              duration_s=0.25),
        ]
        payload = report.to_dict()
        (row,) = payload["obligations"]
        assert row["duration_s"] == pytest.approx(0.75)
        assert [run["duration_s"] for run in row["runs"]] == [0.5, 0.25]
        assert payload["duration_s"] == pytest.approx(0.75)
