"""Metrics primitives: counters, gauges, histograms, registry, exposition."""

import json
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# --------------------------------------------------------------------- #
# counters and gauges
# --------------------------------------------------------------------- #
def test_counter_increments_and_resets():
    c = Counter("c")
    assert c.value == 0
    c.inc()
    c.inc(4)
    assert c.value == 5
    c.reset()
    assert c.value == 0


def test_counter_rejects_negative_increment():
    c = Counter("c")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_moves_both_ways():
    g = Gauge("g")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7


def test_concurrent_counter_increments_are_exact():
    c = Counter("hot")
    threads = [
        threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
        for _ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000


# --------------------------------------------------------------------- #
# histograms
# --------------------------------------------------------------------- #
def test_histogram_bucket_assignment_uses_le_semantics():
    h = Histogram("h", buckets=[1, 2, 5])
    for v in (0.5, 1.0, 1.5, 2.0, 5.0, 99.0):
        h.observe(v)
    snap = h.snapshot()
    cumulative = {b["le"]: b["count"] for b in snap["buckets"]}
    assert cumulative[1.0] == 2  # 0.5 and the boundary value 1.0
    assert cumulative[2.0] == 4
    assert cumulative[5.0] == 5
    assert cumulative["+Inf"] == 6


def test_histogram_percentiles_exact_on_bucket_boundaries():
    # 1..100 observed once each, with a bucket bound at every integer:
    # the p-th percentile is exactly p.
    h = Histogram("h", buckets=list(range(1, 101)))
    for v in range(1, 101):
        h.observe(v)
    assert h.percentile(50) == 50
    assert h.percentile(95) == 95
    assert h.percentile(99) == 99
    assert h.percentile(100) == 100


def test_histogram_percentiles_all_equal_values():
    h = Histogram("h", buckets=[0.5, 1.0, 2.0])
    for _ in range(10):
        h.observe(1.0)
    for q in (50, 95, 99):
        assert h.percentile(q) == 1.0


def test_histogram_percentile_empty_and_bad_q():
    h = Histogram("h", buckets=[1.0])
    assert h.percentile(50) == 0.0
    with pytest.raises(ValueError):
        h.percentile(0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_overflow_bucket_reports_observed_max():
    h = Histogram("h", buckets=[1.0])
    h.observe(7.5)
    h.observe(3.0)
    assert h.percentile(99) == 7.5
    snap = h.snapshot()
    assert snap["max"] == 7.5
    assert snap["min"] == 3.0


def test_histogram_mean_sum_count():
    h = Histogram("h", buckets=[10.0])
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    assert h.count == 3
    assert h.sum == pytest.approx(6.0)
    assert h.mean == pytest.approx(2.0)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", buckets=[])
    with pytest.raises(ValueError):
        Histogram("h", buckets=[1.0, 1.0])
    with pytest.raises(ValueError):
        Histogram("h", buckets=[1.0, float("inf")])


def test_concurrent_histogram_aggregation_is_exact():
    h = Histogram("h", buckets=[1, 2, 3, 4, 5, 6, 7, 8])

    def work(value):
        for _ in range(500):
            h.observe(value)

    threads = [threading.Thread(target=work, args=(i + 1,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert h.count == 4000
    assert h.sum == pytest.approx(sum(500 * (i + 1) for i in range(8)))
    # 4000 observations over values 1..8, 500 each: p50 covers rank 2000,
    # reached exactly at bound 4.
    assert h.percentile(50) == 4


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
def test_registry_get_or_create_shares_instruments():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h") is reg.histogram("h")
    assert len(reg) == 2


def test_registry_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_registry_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("jobs").inc(3)
    reg.gauge("depth").set(2)
    reg.histogram("lat", buckets=[1.0]).observe(0.5)
    snap = reg.snapshot()
    assert snap["schema"] == "repro-metrics/1"
    assert snap["counters"]["jobs"] == 3
    assert snap["gauges"]["depth"] == 2
    assert snap["histograms"]["lat"]["count"] == 1
    json.dumps(snap)  # JSON-safe


def test_registry_collector_merges_into_snapshot_and_exposition():
    reg = MetricsRegistry()
    reg.register_collector("caches", lambda: {"cache.demo.hits": 7})
    snap = reg.snapshot()
    assert snap["collected"]["cache.demo.hits"] == 7
    text = reg.render_prometheus()
    assert "repro_cache_demo_hits 7" in text


def test_registry_reset_zeroes_instruments():
    reg = MetricsRegistry()
    reg.counter("a").inc(5)
    reg.histogram("h", buckets=[1.0]).observe(0.5)
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"]["a"] == 0
    assert snap["histograms"]["h"]["count"] == 0


def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    reg.counter("service.requests", help="Requests").inc(2)
    reg.gauge("queue.depth").set(3)
    reg.histogram("lat.seconds", buckets=[0.1, 1.0]).observe(0.05)
    text = reg.render_prometheus()
    assert "# HELP repro_service_requests Requests" in text
    assert "# TYPE repro_service_requests_total counter" in text
    assert "repro_service_requests_total 2" in text
    assert "repro_queue_depth 3" in text
    assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_lat_seconds_count 1" in text


def test_write_snapshot_roundtrip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("a").inc()
    path = reg.write_snapshot(tmp_path / "snap.json")
    data = json.loads(path.read_text())
    assert data["counters"]["a"] == 1
