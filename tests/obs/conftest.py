"""Fixtures for the observability tests.

The production instruments live in the process-wide default registry, so
every test in this package starts from zeroed instruments — assertions can
then read absolute values instead of deltas.
"""

import pytest

from repro.obs import reset_metrics


@pytest.fixture(autouse=True)
def _zeroed_metrics():
    reset_metrics()
    yield
