"""CLI entry points for the observability layer: repro metrics / repro trace."""

import json

from repro.cli import main


class TestMetricsCommand:
    def test_summary_reports_hit_rate_and_latency(self, capsys):
        code = main(["metrics", "--trials", "6", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        # Human summary: service counters, registry hit rate, percentiles.
        assert "requests:" in out
        assert "registry hits:" in out
        assert "hit rate" in out
        assert "submit→finish:" in out and "p95=" in out
        # Full Prometheus exposition follows the summary.
        assert "# TYPE repro_service_requests_total counter" in out
        assert "repro_service_submit_to_finish_seconds_bucket" in out

    def test_json_format_is_a_snapshot(self, capsys):
        code = main(["metrics", "--trials", "6", "--scale", "0.1",
                     "--format", "json"])
        assert code == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["schema"] == "repro-metrics/1"
        assert snap["counters"]["service.requests"] >= 1
        assert snap["histograms"]["service.submit_to_finish_seconds"]["count"] >= 1

    def test_prometheus_format(self, capsys):
        code = main(["metrics", "--no-demo", "--format", "prometheus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_service_requests_total counter" in out

    def test_no_demo_skips_tuning(self, capsys):
        code = main(["metrics", "--no-demo"])
        out = capsys.readouterr().out
        assert code == 0
        assert "requests:      0" in out


class TestTraceCommand:
    def test_writes_nested_jsonl_trace_tree(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        code = main(["trace", "--trials", "6", "--scale", "0.1",
                     "--num-workers", "2", "--output", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        rounds = [r for r in records if r.get("name") == "service.round"]
        chunks = [r for r in records if r.get("name") == "measure.chunk"]
        batches = {r["id"]: r for r in records if r.get("name") == "measure.batch"}
        assert rounds and chunks and batches
        # Chunk spans nest under a batch span, batches under a round span.
        for chunk in chunks:
            assert chunk["parent"] in batches
        round_ids = {r["id"] for r in rounds}
        assert all(b["parent"] in round_ids for b in batches.values())
        # The rendered tree shows the nesting.
        assert "service.round" in out and "measure.batch" in out

    def test_jsonl_to_stdout_without_output(self, capsys):
        code = main(["trace", "--trials", "6", "--scale", "0.1"])
        out = capsys.readouterr().out
        assert code == 0
        assert '"kind": "span"' in out
        assert "service.finish" in out


class TestMetricsOutFlag:
    def test_serve_writes_snapshot_artifact(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        code = main(["serve", "--trials", "6", "--scale", "0.05",
                     "--metrics-out", str(path)])
        assert code == 0
        snap = json.loads(path.read_text())
        assert snap["schema"] == "repro-metrics/1"
        assert snap["counters"]["service.requests"] >= 1
