"""Span tracing: arming, nesting, thread-pool parents, JSONL, rendering."""

import json
import threading

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    active_tracer,
    current_span_id,
    render_tree,
    span,
    trace_event,
    tracing,
)


# --------------------------------------------------------------------- #
# arming discipline
# --------------------------------------------------------------------- #
def test_unarmed_span_is_shared_noop():
    assert active_tracer() is None
    sp = span("anything", attr=1)
    assert sp is NULL_SPAN
    with sp as inner:
        inner.annotate(extra=2)  # swallowed
    trace_event("ignored")  # no-op, no error
    assert current_span_id() is None


def test_tracing_arms_and_disarms():
    with tracing() as tracer:
        assert active_tracer() is tracer
        with span("root"):
            pass
    assert active_tracer() is None
    assert [r["name"] for r in tracer.records] == ["root"]


def test_tracing_sessions_do_not_nest():
    with tracing():
        with pytest.raises(RuntimeError):
            with tracing():
                pass


def test_tracer_disarmed_even_on_exception():
    with pytest.raises(ValueError):
        with tracing():
            raise ValueError("boom")
    assert active_tracer() is None


# --------------------------------------------------------------------- #
# nesting and parents
# --------------------------------------------------------------------- #
def test_nested_spans_record_parent_ids():
    with tracing() as tracer:
        with span("outer") as outer:
            assert current_span_id() == outer.id
            with span("inner") as inner:
                assert inner.parent == outer.id
                trace_event("tick", n=1)
            assert current_span_id() == outer.id
    by_name = {r["name"]: r for r in tracer.records}
    assert by_name["outer"]["parent"] is None
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert by_name["tick"]["kind"] == "event"
    assert by_name["tick"]["parent"] == by_name["inner"]["id"]


def test_explicit_parent_crosses_thread_boundary():
    # ThreadPoolExecutor-style workers do not inherit contextvars: the
    # submitting side captures current_span_id() and passes it explicitly.
    with tracing() as tracer:
        with span("batch"):
            parent = current_span_id()

            def worker():
                # fresh thread: inherited context is empty...
                assert current_span_id() is None
                with span("chunk", parent=parent):
                    pass

            t = threading.Thread(target=worker)
            t.start()
            t.join()
    by_name = {r["name"]: r for r in tracer.records}
    assert by_name["chunk"]["parent"] == by_name["batch"]["id"]


def test_span_records_error_attribute_and_propagates():
    with pytest.raises(KeyError):
        with tracing() as tracer:
            with span("fails"):
                raise KeyError("missing")
    (record,) = tracer.records
    assert record["attrs"]["error"] == "KeyError: 'missing'"


def test_annotate_merges_attributes():
    with tracing() as tracer:
        with span("round", budget=4) as sp:
            sp.annotate(trials=7)
    (record,) = tracer.records
    assert record["attrs"] == {"budget": 4, "trials": 7}


# --------------------------------------------------------------------- #
# persistence and rendering
# --------------------------------------------------------------------- #
def test_jsonl_file_written_eagerly(tmp_path):
    path = tmp_path / "trace.jsonl"
    with tracing(path) as tracer:
        with span("first"):
            pass
        # eager: the record is on disk before the session closes
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "first"
        with span("second"):
            pass
    lines = [json.loads(line) for line in path.read_text().strip().splitlines()]
    assert [r["name"] for r in lines] == ["first", "second"]
    assert tracer.path == path


def test_tracer_write_and_lines_roundtrip(tmp_path):
    tracer = Tracer()
    with tracer.span("solo", tag="x"):
        pass
    out = tracer.write(tmp_path / "out.jsonl")
    assert json.loads(out.read_text())["attrs"] == {"tag": "x"}
    assert len(tracer.lines()) == 1


def test_render_tree_nests_and_orders_children():
    with tracing() as tracer:
        with span("root"):
            with span("a"):
                trace_event("ev", k=1)
            with span("b"):
                pass
    text = tracer.tree()
    lines = text.splitlines()
    assert lines[0].startswith("root  ")
    assert lines[1].startswith("  a  ")
    assert lines[2].strip().startswith("· ev")
    assert lines[3].startswith("  b  ")


def test_render_tree_surfaces_orphans_at_root():
    records = [
        {"kind": "span", "id": 9, "parent": 42, "name": "orphan",
         "start_s": 0.0, "duration_s": 0.001, "attrs": {}},
    ]
    text = render_tree(records)
    assert text.startswith("orphan  ")
