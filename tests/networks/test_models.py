"""Unit tests for the BERT / ResNet-50 / MobileNet-V2 frontends."""

import pytest

from repro.networks.bert import build_bert
from repro.networks.mobilenet import build_mobilenet_v2
from repro.networks.resnet import build_resnet50


class TestBert:
    def test_has_ten_distinct_subgraphs(self):
        """Matches Section 4.1: BERT has 10 distinct subgraphs."""
        assert len(build_bert()) == 10

    def test_table4_subgraph_names_present(self):
        names = {sg.name for sg in build_bert()}
        expected = {
            "GEMM-I", "GEMM-II", "GEMM-III", "GEMM-IV", "Softmax",
            "Batch_GEMM-I", "Batch_GEMM-II", "Element-wise-I", "Element-wise-II", "GEMM+Tanh",
        }
        assert names == expected

    def test_total_flops_near_reference(self):
        """BERT-base at sequence length 128 performs ~22.5 GFLOPs per example."""
        flops = build_bert(batch_size=1).total_flops
        assert 15e9 < flops < 30e9

    def test_gemm_subgraphs_dominate_runtime_flops(self):
        net = build_bert()
        gemm_flops = sum(sg.total_flops for sg in net if sg.name.startswith("GEMM-"))
        assert gemm_flops / net.total_flops > 0.8

    def test_batch_gemm_flops_much_smaller_than_gemm(self):
        """Table 4: the batched GEMMs have orders of magnitude fewer FLOPs."""
        net = build_bert()
        gemm_i = net.subgraph("GEMM-I").dag.flops
        batch_gemm = net.subgraph("Batch_GEMM-I").dag.flops
        assert batch_gemm < gemm_i / 2

    def test_batch_scales_flops(self):
        assert build_bert(batch_size=16).total_flops == pytest.approx(
            16 * build_bert(batch_size=1).total_flops, rel=0.01
        )

    def test_weights_count_layers(self):
        net = build_bert(num_layers=12)
        assert net.subgraph("GEMM-I").weight == 36   # 3 projections x 12 layers
        assert net.subgraph("GEMM-III").weight == 12
        assert net.subgraph("GEMM+Tanh").weight == 1

    def test_invalid_head_split_rejected(self):
        with pytest.raises(ValueError):
            build_bert(hidden=100, num_heads=7)


class TestResNet50:
    def test_subgraph_count_in_expected_range(self):
        """The paper quotes ~24 distinct subgraphs for ResNet-50."""
        assert 18 <= len(build_resnet50()) <= 28

    def test_total_flops_near_reference(self):
        """ResNet-50 at 224x224 performs ~7.7 GFLOPs per image (with ReLUs)."""
        flops = build_resnet50().total_flops
        assert 6e9 < flops < 10e9

    def test_contains_stem_and_fc(self):
        names = {sg.name for sg in build_resnet50()}
        assert "conv1_7x7" in names
        assert "fc" in names

    def test_batch_scales_flops(self):
        assert build_resnet50(batch_size=16).total_flops == pytest.approx(
            16 * build_resnet50().total_flops, rel=0.01
        )

    def test_bottleneck_block_counts(self):
        net = build_resnet50()
        assert net.subgraph("stage2_3x3").weight == 3
        assert net.subgraph("stage4_3x3").weight == 6


class TestMobileNetV2:
    def test_subgraph_count(self):
        assert 30 <= len(build_mobilenet_v2()) <= 45

    def test_total_flops_near_reference(self):
        """MobileNet-V2 performs ~0.6 GFLOPs (0.3 GMACs) per image."""
        flops = build_mobilenet_v2().total_flops
        assert 0.3e9 < flops < 1.2e9

    def test_depthwise_subgraphs_present(self):
        net = build_mobilenet_v2()
        depthwise = [sg for sg in net if sg.similarity_group == "depthwise"]
        assert len(depthwise) >= 7
        for sg in depthwise:
            assert sg.dag.tags["op"] == "depthwise_conv2d"

    def test_head_and_classifier_present(self):
        names = {sg.name for sg in build_mobilenet_v2()}
        assert "head_conv" in names and "fc" in names

    def test_unique_dag_names(self):
        net = build_mobilenet_v2()
        dag_names = [sg.dag.name for sg in net]
        assert len(set(dag_names)) == len(dag_names)
