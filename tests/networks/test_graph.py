"""Unit tests for the network graph container."""

import pytest

from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import gemm


def _subgraph(name, weight=1.0, m=64):
    return Subgraph(name=name, dag=gemm(m, 64, 64, name=f"graph_{name}"), weight=weight)


class TestSubgraph:
    def test_total_flops_scales_with_weight(self):
        sg = _subgraph("a", weight=3)
        assert sg.total_flops == pytest.approx(3 * sg.dag.flops)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            _subgraph("a", weight=0)


class TestNetworkGraph:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            NetworkGraph("n", [_subgraph("a"), _subgraph("a", m=128)])

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            NetworkGraph("n", [])

    def test_lookup_and_iteration(self):
        net = NetworkGraph("n", [_subgraph("a"), _subgraph("b", m=128)])
        assert len(net) == 2
        assert net.subgraph("b").dag.name == "graph_b"
        assert [sg.name for sg in net] == ["a", "b"]
        with pytest.raises(KeyError):
            net.subgraph("c")

    def test_estimated_latency_requires_all_tasks(self):
        net = NetworkGraph("n", [_subgraph("a", weight=2), _subgraph("b", m=128)])
        assert net.estimated_latency({"a": 1.0}) == float("inf")
        assert net.estimated_latency({"a": 1.0, "b": 3.0}) == pytest.approx(2 * 1.0 + 3.0)

    def test_weights_map(self):
        net = NetworkGraph("n", [_subgraph("a", weight=2), _subgraph("b", weight=5, m=128)])
        assert net.weights() == {"a": 2, "b": 5}

    def test_top_subgraphs_by_flops(self):
        net = NetworkGraph(
            "n",
            [
                Subgraph("small", gemm(32, 32, 32, name="graph_small"), weight=1),
                Subgraph("large", gemm(256, 256, 256, name="graph_large"), weight=1),
                Subgraph("medium", gemm(128, 128, 128, name="graph_medium"), weight=1),
            ],
        )
        top2 = [sg.name for sg in net.top_subgraphs_by_flops(2)]
        assert top2 == ["large", "medium"]

    def test_total_flops(self):
        a, b = _subgraph("a", weight=2), _subgraph("b", weight=1, m=128)
        net = NetworkGraph("n", [a, b])
        assert net.total_flops == pytest.approx(a.total_flops + b.total_flops)
