"""Unit tests for the append-only JSONL record store and resume support."""

import json

import pytest

from repro.core.scheduler import HARLScheduler
from repro.costmodel.model import ScheduleCostModel
from repro.hardware.measurer import Measurer
from repro.records import RecordStore, schedule_to_dict
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.workloads import gemm


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "logs" / "records.jsonl"


def _measure_some(cpu, gemm_sketch, rng, store, n=6):
    measurer = Measurer(cpu, seed=0, record_store=store)
    schedules = sample_initial_schedules(gemm_sketch, n, rng)
    return measurer.measure(schedules)


class TestRoundTrip:
    def test_measures_roundtrip(self, cpu, gemm_sketch, rng, store_path):
        store = RecordStore(store_path)
        results = _measure_some(cpu, gemm_sketch, rng, store)
        store.close()

        loaded = RecordStore.load(store_path)
        assert len(loaded.query(kind="measure")) == len(results)
        for record, result in zip(loaded.query(kind="measure"), results):
            assert record.latency == result.latency
            assert record.trial_index == result.trial_index
            assert record.workload == result.schedule.dag.name

    def test_restored_schedules_preserve_identity(self, cpu, gemm_sketch, rng, store_path):
        store = RecordStore(store_path)
        results = _measure_some(cpu, gemm_sketch, rng, store)
        store.close()

        dag = gemm(128, 128, 128)
        loaded = RecordStore.load(store_path)
        for record, result in zip(loaded.query(kind="measure"), results):
            assert record.restore_schedule(dag).signature() == result.schedule.signature()

    def test_results_roundtrip(self, tiny_config, gemm_dag, store_path):
        store = RecordStore(store_path)
        scheduler = HARLScheduler(config=tiny_config, seed=0, record_store=store)
        result = scheduler.tune(gemm_dag, n_trials=8)
        store.close()

        loaded = RecordStore.load(store_path)
        assert len(loaded.query(kind="result")) == 1
        assert loaded.query(kind="result")[0].latency == pytest.approx(result.best_latency)
        # every consumed trial was streamed to the log as a measure line
        assert len(loaded.query(kind="measure", workload=gemm_dag.name)) == result.trials_used

    def test_reopening_appends(self, cpu, gemm_sketch, rng, store_path):
        store = RecordStore(store_path)
        _measure_some(cpu, gemm_sketch, rng, store, n=3)
        store.close()
        reopened = RecordStore(store_path)
        assert len(reopened.query(kind="measure")) == 3
        _measure_some(cpu, gemm_sketch, rng, reopened, n=2)
        reopened.close()
        assert len(RecordStore.load(store_path).query(kind="measure")) == 5

    def test_in_memory_store(self, cpu, gemm_sketch, rng):
        store = RecordStore()
        _measure_some(cpu, gemm_sketch, rng, store, n=4)
        assert len(store.query(kind="measure")) == 4
        assert store.path is None

    def test_best_query_and_workloads(self, cpu, gemm_sketch, rng):
        store = RecordStore()
        results = _measure_some(cpu, gemm_sketch, rng, store)
        name = results[0].schedule.dag.name
        assert store.workloads() == [name]
        best = store.query(kind="measure", workload=name, best=True)
        assert best.latency == min(r.latency for r in results)
        assert store.query(kind="measure", workload="missing", best=True) is None

    def test_load_missing_file_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RecordStore.load(tmp_path / "absent.jsonl")


class TestCorruptionTolerance:
    def _write_with_garbage(self, path, gemm_sketch, rng):
        schedule = sample_initial_schedules(gemm_sketch, 1, rng)[0]
        good = {
            "kind": "measure",
            "workload": schedule.dag.name,
            "latency": 1e-4,
            "throughput": 1e9,
            "trial_index": 1,
            "schedule": schedule_to_dict(schedule),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(good) + "\n"
            + "{not valid json\n"                       # syntactically broken
            + json.dumps({"kind": "warp-drive"}) + "\n"  # unknown kind
            + json.dumps({"kind": "measure"}) + "\n"     # missing fields
            + json.dumps(good)[: len(json.dumps(good)) // 2]  # truncated tail
        )

    def test_corrupted_lines_skipped(self, store_path, gemm_sketch, rng):
        self._write_with_garbage(store_path, gemm_sketch, rng)
        # The truncated tail is a crash artifact, not corruption: it is
        # physically removed (with a warning) so later appends cannot
        # concatenate onto it; only the three mid-file lines count as skipped.
        with pytest.warns(UserWarning, match="torn"):
            store = RecordStore.load(store_path)
        assert len(store.query(kind="measure")) == 1
        assert store.skipped_lines == 3
        assert store.truncated_tails == 1

    def test_strict_mode_raises(self, store_path, gemm_sketch, rng):
        self._write_with_garbage(store_path, gemm_sketch, rng)
        with pytest.warns(UserWarning, match="torn"):
            with pytest.raises(ValueError):
                RecordStore.load(store_path, strict=True)

    def test_blank_lines_ignored(self, store_path):
        store_path.parent.mkdir(parents=True, exist_ok=True)
        store_path.write_text("\n\n  \n")
        store = RecordStore.load(store_path)
        assert len(store) == 0
        assert store.skipped_lines == 0


class TestFingerprintRouting:
    """Record identity is structural: renamed twins share their records."""

    def test_measures_for_matches_renamed_dag(self, cpu, gemm_sketch, rng):
        store = RecordStore()
        results = _measure_some(cpu, gemm_sketch, rng, store)
        twin = gemm(128, 128, 128, name="renamed_twin")
        assert len(store.query(kind="measure", dag=twin)) == len(results)
        assert store.query(kind="measure", dag=gemm(256, 256, 256)) == []

    def test_replay_into_renamed_dag(self, cpu, gemm_sketch, rng, store_path):
        store = RecordStore(store_path)
        results = _measure_some(cpu, gemm_sketch, rng, store, n=6)
        store.close()

        twin = gemm(128, 128, 128, name="renamed_twin")
        restored = RecordStore.load(store_path).replay(twin)
        assert len(restored) == len(results)
        assert all(s.dag.name == "renamed_twin" for s in restored)

    def test_legacy_records_fall_back_to_name_match(self, cpu, gemm_sketch, rng,
                                                    store_path):
        store = RecordStore(store_path)
        _measure_some(cpu, gemm_sketch, rng, store, n=3)
        store.close()
        # Strip the fingerprints, as a log written before this field existed.
        lines = []
        for line in store_path.read_text().splitlines():
            data = json.loads(line)
            data.pop("fingerprint", None)
            lines.append(json.dumps(data))
        store_path.write_text("\n".join(lines) + "\n")

        legacy = RecordStore.load(store_path)
        assert all(m.fingerprint == "" for m in legacy.query(kind="measure"))
        assert len(legacy.query(kind="measure", dag=gemm(128, 128, 128))) == 3  # name match
        assert legacy.query(kind="measure", dag=gemm(128, 128, 128, name="renamed")) == []

    def test_results_carry_fingerprints(self, tiny_config, gemm_dag, store_path):
        store = RecordStore(store_path)
        HARLScheduler(config=tiny_config, seed=0, record_store=store).tune(
            gemm_dag, n_trials=8
        )
        store.close()
        loaded = RecordStore.load(store_path)
        assert all(m.fingerprint for m in loaded.query(kind="measure"))
        assert all(r.fingerprint for r in loaded.query(kind="result"))
        twin = gemm(128, 128, 128, name="twin")
        twin_results = loaded.query(kind="result", dag=twin)
        assert len(twin_results) == 1
        # Fingerprint-matched results restore onto the renamed twin.
        restored = twin_results[0].restore_schedule(twin, check_workload=False)
        assert restored.dag.name == "twin"


class TestReplayAndResume:
    def test_replay_warm_starts_cost_model_and_measurer(
        self, cpu, gemm_sketch, rng, store_path
    ):
        store = RecordStore(store_path)
        results = _measure_some(cpu, gemm_sketch, rng, store, n=8)
        store.close()

        dag = gemm(128, 128, 128)
        cost_model = ScheduleCostModel(seed=0)
        measurer = Measurer(cpu, seed=0)
        loaded = RecordStore.load(store_path)
        restored = loaded.replay(dag, cost_model=cost_model, measurer=measurer)

        assert len(restored) == len(results)
        assert cost_model.num_samples(dag.name) == len(results)
        assert measurer.best_latency(dag.name) == min(r.latency for r in results)
        assert measurer.trials(dag.name) == 0  # no budget consumed by replay
        # best first
        assert restored[0].signature() == min(results, key=lambda r: r.latency).schedule.signature()

    def test_replay_ignores_other_workloads(self, cpu, gemm_sketch, rng):
        store = RecordStore()
        _measure_some(cpu, gemm_sketch, rng, store)
        other = gemm(256, 256, 256)
        assert store.replay(other) == []

    def test_resume_mid_tuning(self, tiny_config, gemm_dag, store_path):
        # First leg: tune with persistence.
        store = RecordStore(store_path)
        first = HARLScheduler(config=tiny_config, seed=0, record_store=store).tune(
            gemm_dag, n_trials=12
        )
        store.close()

        # Second leg: a brand-new process-equivalent resumes from the log.
        resumed_scheduler = HARLScheduler(config=tiny_config, seed=1).resume_from(
            RecordStore.load(store_path)
        )
        second = resumed_scheduler.tune(gemm_dag, n_trials=12)

        # The resumed run starts from the first leg's best, so it can only improve.
        assert second.best_latency <= first.best_latency
        assert second.trials_used == 12  # fresh budget accounting
        # And its cost model was warm-started with the recorded measurements.
        assert resumed_scheduler.cost_model.num_samples(gemm_dag.name) >= first.trials_used

    def test_resume_seeds_warm_start_schedules(self, tiny_config, gemm_dag, store_path):
        store = RecordStore(store_path)
        HARLScheduler(config=tiny_config, seed=0, record_store=store).tune(
            gemm_dag, n_trials=8
        )
        store.close()

        scheduler = HARLScheduler(config=tiny_config, seed=1).resume_from(
            RecordStore.load(store_path)
        )
        ctx = scheduler._task(gemm_dag)
        assert ctx.best_schedules  # replayed schedules seed the episode warm start


class TestQueryAPI:
    """store.query() subsumes the six legacy accessors; the shims agree."""

    @pytest.fixture()
    def populated(self, cpu, gemm_sketch, rng, store_path):
        store = RecordStore(store_path)
        _measure_some(cpu, gemm_sketch, rng, store, n=5)
        yield store
        store.close()

    def test_query_validates_arguments(self, populated):
        with pytest.raises(ValueError, match="unknown record kind"):
            populated.query(kind="bogus")
        with pytest.raises(ValueError, match="not both"):
            populated.query(dag=gemm(128, 128, 128), workload="x")

    def test_best_returns_minimum_or_none(self, populated):
        records = populated.query(kind="measure")
        best = populated.query(kind="measure", best=True)
        assert best is min(records, key=lambda m: m.latency)
        assert populated.query(kind="measure", workload="absent", best=True) is None

    def test_deprecated_shims_agree_with_query(self, populated):
        dag = gemm(128, 128, 128)
        wl = populated.query(kind="measure")[0].workload
        with pytest.deprecated_call():
            assert populated.measures() == populated.query(kind="measure")
        with pytest.deprecated_call():
            assert populated.measures_for(dag) == populated.query(
                kind="measure", dag=dag
            )
        with pytest.deprecated_call():
            assert populated.results() == populated.query(kind="result")
        with pytest.deprecated_call():
            assert populated.results_for(dag) == populated.query(kind="result", dag=dag)
        with pytest.deprecated_call():
            assert populated.best_measure(wl) is populated.query(
                kind="measure", workload=wl, best=True
            )
        with pytest.deprecated_call():
            expected = min(
                r.latency
                for r in populated.query(kind="measure", workload=wl)
                + populated.query(kind="result", workload=wl)
            )
            assert populated.best_latency(wl) == expected

    def test_best_measure_still_raises_keyerror(self, populated):
        with pytest.deprecated_call():
            with pytest.raises(KeyError, match="no measurements"):
                populated.best_measure("absent")

    def test_iter_yields_without_a_full_copy(self, populated):
        seen = []
        for record in populated:
            seen.append(record.trial_index)
        assert seen == [m.trial_index for m in populated.query(kind="measure")]
