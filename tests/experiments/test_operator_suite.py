"""Unit tests for the Table 6 operator suite."""

import pytest

from repro.experiments.operator_suite import (
    OPERATOR_CLASSES,
    OPERATOR_SUITE,
    operator_dags,
    representative_dag,
)


class TestSuiteDefinition:
    def test_all_seven_classes_present(self):
        assert set(OPERATOR_CLASSES) == {"GEMM-S", "GEMM-M", "GEMM-L", "C1D", "C2D", "C3D", "T2D"}

    def test_each_class_has_four_configurations(self):
        for configs in OPERATOR_SUITE.values():
            assert len(configs) == 4

    def test_table6_reference_shapes(self):
        assert (1024, 1024, 1024) in OPERATOR_SUITE["GEMM-L"]
        assert (224, 224, 3, 64, 7, 2, 3) in OPERATOR_SUITE["C2D"]
        assert (4, 4, 512, 256, 4, 2, 1) in OPERATOR_SUITE["T2D"]


class TestInstantiation:
    @pytest.mark.parametrize("op_class", OPERATOR_CLASSES)
    def test_all_configs_build(self, op_class):
        dags = operator_dags(op_class, batch=1)
        assert len(dags) == 4
        for dag in dags:
            assert dag.flops > 0
            assert len(dag.main_stage.spatial_iters) >= 2

    @pytest.mark.parametrize("op_class", OPERATOR_CLASSES)
    def test_batch16_builds(self, op_class):
        dag = representative_dag(op_class, batch=16)
        assert dag.flops > representative_dag(op_class, batch=1).flops

    def test_limit_parameter(self):
        assert len(operator_dags("C2D", limit=2)) == 2

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            operator_dags("GEMM-XXL")

    def test_gemm_l_is_larger_than_gemm_s(self):
        assert representative_dag("GEMM-L").flops > representative_dag("GEMM-S").flops
