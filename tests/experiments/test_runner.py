"""Unit tests for the head-to-head experiment runners."""

import numpy as np
import pytest

from repro.experiments.runner import compare_on_network, compare_on_operator, default_trials
from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import gemm, softmax


@pytest.fixture
def tiny_network():
    return NetworkGraph(
        name="runner-net",
        subgraphs=[
            Subgraph("mm", gemm(128, 128, 128, name="runner_mm"), weight=4, similarity_group="gemm"),
            Subgraph("soft", softmax(128, 64, name="runner_soft"), weight=2, similarity_group="softmax"),
        ],
    )


class TestDefaultTrials:
    def test_scaled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_TRIALS", raising=False)
        assert default_trials(1000, 60) == 60

    def test_full_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_trials(1000, 60) == 1000

    def test_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.setenv("REPRO_TRIALS", "25")
        assert default_trials(1000, 60) == 25


class TestOperatorComparison:
    def test_runs_both_schedulers(self, tiny_config, gemm_dag):
        comparison = compare_on_operator(
            gemm_dag, n_trials=12, config=tiny_config, seed=0, schedulers=("ansor", "harl")
        )
        assert set(comparison.results) == {"ansor", "harl"}
        perf = comparison.normalized_performance()
        assert max(perf.values()) == pytest.approx(1.0)
        times = comparison.normalized_search_time()
        assert max(times.values()) == pytest.approx(1.0)

    def test_ablation_scheduler_supported(self, tiny_config, gemm_dag):
        comparison = compare_on_operator(
            gemm_dag, n_trials=8, config=tiny_config, seed=0,
            schedulers=("ansor", "hierarchical-rl"),
        )
        assert comparison.results["hierarchical-rl"].scheduler == "hierarchical-rl"

    def test_results_are_independent_instances(self, tiny_config, gemm_dag):
        comparison = compare_on_operator(
            gemm_dag, n_trials=8, config=tiny_config, seed=0, schedulers=("ansor", "harl")
        )
        # Each scheduler got its own trial budget (no shared measurer).
        for result in comparison.results.values():
            assert result.trials_used >= 8


class TestNetworkComparison:
    def test_runs_both_schedulers(self, tiny_config, tiny_network):
        comparison = compare_on_network(
            tiny_network, n_trials=24, config=tiny_config, seed=0, schedulers=("ansor", "harl")
        )
        assert set(comparison.results) == {"ansor", "harl"}
        for result in comparison.results.values():
            assert np.isfinite(result.best_latency)
        assert max(comparison.normalized_performance().values()) == pytest.approx(1.0)
