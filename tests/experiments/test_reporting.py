"""Unit tests for the text/CSV reporting helpers."""

import csv


from repro.experiments.reporting import format_series, format_table, write_csv


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bbb", 2]], title="My table")
        assert "My table" in text
        assert "name" in text and "value" in text
        assert "1.235" in text  # default float format
        assert "bbb" in text

    def test_alignment_pads_columns(self):
        text = format_table(["x"], [["longvalue"], ["s"]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_format="{:.1f}")
        assert "0.1" in text and "0.12" not in text


class TestFormatSeries:
    def test_series_rendering(self):
        text = format_series("Batch=1", {"ansor": 0.8, "harl": 1.0})
        assert text.startswith("Batch=1:")
        assert "ansor=0.800" in text and "harl=1.000" in text


class TestWriteCsv:
    def test_writes_rows(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        assert path.exists()
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]
