"""Tests for the end-to-end network tuner (NetworkTuner + task policies).

Covers the tentpole behaviours:

* the ``network_smoke`` toy network runs end to end through the shared
  tuning service and produces a finite ``f(S)`` report,
* both allocation policies (greedy gradient / SW-UCB bandit) drive rounds,
* a second pass over the same registry answers every task in O(1),
* the acceptance regression: tuning MobileNet-V2 *after* ResNet-50 on a
  shared registry reaches the cold-tuned ``f(S)`` in at most half the
  trials, via fingerprint-keyed registry reuse.
"""

import json

import numpy as np
import pytest

from repro.experiments.network_runner import (
    BanditTaskScheduler,
    NetworkTuner,
    make_task_policy,
)
from repro.networks.graph import NetworkGraph, Subgraph
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import SOURCE_REGISTRY, TuningService
from repro.tensor.workloads import conv1d, gemm


def toy_network(name="toy"):
    """A 2-subgraph network: one weighted GEMM, one conv1d."""
    return NetworkGraph(
        name=name,
        subgraphs=[
            Subgraph("mm", gemm(64, 64, 64, name=f"{name}_mm"), weight=4,
                     similarity_group="gemm"),
            Subgraph("c1d", conv1d(64, 16, 32, 3, 1, 1, name=f"{name}_c1d"),
                     weight=2, similarity_group="conv1d"),
        ],
    )


def make_service(tiny_config, registry=None, seed=0, **kwargs):
    return TuningService(
        registry=registry if registry is not None else ScheduleRegistry(),
        config=tiny_config, seed=seed, **kwargs,
    )


@pytest.mark.network_smoke
class TestNetworkSmoke:
    """Fast end-to-end sanity pass (`make network-smoke`)."""

    def test_toy_network_end_to_end(self, tiny_config):
        service = make_service(tiny_config)
        report = NetworkTuner(toy_network(), service).tune(n_trials=24)

        assert np.isfinite(report.final_latency) and report.final_latency > 0
        assert report.trials_used == 24
        assert report.jobs_created == 2
        assert {t.task for t in report.tasks} == {"mm", "c1d"}
        # Every task got at least one warm-up round; the policy's
        # per-task allocations account for the whole budget.
        assert all(t.trials > 0 for t in report.tasks)
        assert sum(t.trials for t in report.tasks) == 24
        # f(S) = sum_n w_n * g_n holds for the reported tasks.
        assert report.final_latency == pytest.approx(
            sum(t.weighted_latency for t in report.tasks)
        )
        # Trial counts in the trajectory are non-decreasing and f(S) is
        # monotonically non-increasing once finite.
        trials = [t for t, _ in report.trajectory]
        assert trials == sorted(trials)
        finite = [f for _, f in report.trajectory if np.isfinite(f)]
        assert finite and all(a >= b for a, b in zip(finite, finite[1:]))
        # Completed jobs landed in the registry for future reuse.
        assert len(service.registry) == 2

    def test_second_pass_is_all_registry_hits(self, tiny_config):
        registry = ScheduleRegistry()
        first = NetworkTuner(
            toy_network(), make_service(tiny_config, registry)
        ).tune(n_trials=24)
        second = NetworkTuner(
            toy_network("toy_again"), make_service(tiny_config, registry, seed=1)
        ).tune(n_trials=24)

        assert second.registry_hits == 2
        assert second.jobs_created == 0
        assert second.trials_used == 0
        assert second.final_latency == pytest.approx(first.final_latency)
        assert all(t.source == SOURCE_REGISTRY for t in second.tasks)
        assert all(t.provenance.startswith("registry:") for t in second.tasks)


class TestPolicies:
    def test_gradient_policy_runs(self, tiny_config):
        report = NetworkTuner(
            toy_network(), make_service(tiny_config), policy="gradient"
        ).tune(n_trials=16)
        assert report.policy == "gradient"
        assert np.isfinite(report.final_latency)

    def test_unknown_policy_rejected(self, tiny_config):
        with pytest.raises(KeyError):
            NetworkTuner(toy_network(), make_service(tiny_config),
                         policy="round-robin")

    def test_bandit_policy_warms_up_then_explores(self, tiny_config):
        policy = make_task_policy("bandit", toy_network(), tiny_config, seed=0)
        assert isinstance(policy, BanditTaskScheduler)
        first, second = policy.next_task(), None
        policy.record(first, 1.0, trials=4)
        second = policy.next_task()
        assert {first, second} == {"mm", "c1d"}  # warm-up covers all tasks
        policy.record(second, 1.0, trials=4)
        assert policy.next_task(among=["c1d"]) == "c1d"
        with pytest.raises(ValueError):
            policy.next_task(among=[])

    def test_policies_share_validation(self, tiny_config):
        policy = make_task_policy("bandit", toy_network(), tiny_config)
        with pytest.raises(ValueError):
            policy.record("mm", 0.0)
        with pytest.raises(KeyError):
            policy.record("ghost", 1.0)

    def test_invalid_budget_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            NetworkTuner(toy_network(), make_service(tiny_config)).tune(0)


class TestBudgetExhaustion:
    def test_starved_tasks_flush_best_so_far(self, tiny_config):
        # Budget smaller than one trial per task: at least one task never
        # measures, f(S) stays inf, but the run completes, every handle
        # resolves and the measured tasks still land in the registry.
        service = make_service(tiny_config)
        report = NetworkTuner(toy_network(), service).tune(n_trials=1)
        assert report.trials_used == 1
        assert report.final_latency == float("inf")
        assert service.active_jobs() == 0
        assert len(service.registry) >= 1
        starved = [t for t in report.tasks if t.trials == 0]
        assert starved and all(t.provenance == "cold" for t in starved)

    def test_fair_share_warmup_covers_every_task(self, tiny_config):
        # A budget that is smaller than #tasks * measures_per_round but at
        # least #tasks still yields a finite f(S): each task's first round
        # is capped at its fair share of the budget.
        report = NetworkTuner(toy_network(), make_service(tiny_config)).tune(
            n_trials=4
        )
        assert report.trials_used == 4
        assert np.isfinite(report.final_latency)
        assert all(t.trials == 2 for t in report.tasks)


class TestReport:
    def test_report_round_trip(self, tiny_config, tmp_path):
        report = NetworkTuner(toy_network(), make_service(tiny_config)).tune(16)
        data = report.to_dict()
        assert data["network"] == "toy"
        assert len(data["tasks"]) == 2
        # The zero-trial baseline is inf and must serialise as null (strict
        # RFC 8259 JSON: no bare Infinity tokens in the artifact).
        assert data["trajectory"][0] == [0, None]
        path = report.write_json(tmp_path / "report.json")
        assert "Infinity" not in path.read_text()
        assert json.loads(path.read_text())["trials_used"] == 16
        text = report.format()
        assert "end-to-end f(S)" in text and "mm" in text
        assert report.task("mm").weight == 4
        with pytest.raises(KeyError):
            report.task("ghost")
        assert report.trials_to_reach(0.0) is None
        assert report.trials_to_reach(report.final_latency) <= 16


@pytest.mark.slow
class TestCrossNetworkAcceptance:
    """Acceptance: MobileNet after ResNet on a shared registry reaches the
    cold-tuned ``f(S)`` in at most half the trials via fingerprint reuse."""

    TRIALS = 200

    def _tune(self, network, registry, seed, config):
        # One warm-start candidate per task: MobileNet has ~38 tasks sharing
        # one 200-trial budget, so k transferred schedules per task cost
        # 38*k trials before refinement starts.  k=1 keeps the reuse signal
        # while leaving most of the budget for search.
        service = TuningService(registry=registry, config=config, seed=seed,
                                max_warm_start=1)
        return NetworkTuner(network, service).tune(n_trials=self.TRIALS)

    def test_mobilenet_after_resnet_halves_trials_to_cold_fs(self):
        from repro.core.config import HARLConfig
        from repro.networks.mobilenet import build_mobilenet_v2
        from repro.networks.resnet import build_resnet50

        config = HARLConfig.scaled(0.05)

        cold = self._tune(build_mobilenet_v2(), ScheduleRegistry(), 0, config)
        assert np.isfinite(cold.final_latency)

        shared = ScheduleRegistry()
        self._tune(build_resnet50(), shared, 0, config)
        warm = self._tune(build_mobilenet_v2(), shared, 1, config)

        # Cross-network reuse provenance: MobileNet's tasks were seeded from
        # ResNet's registered subgraphs (fingerprint-keyed NN transfer).
        assert warm.warm_started_tasks > 0
        assert any(
            any("resnet" in donor for donor in task.warm_start_donors)
            for task in warm.tasks
        )

        # The warm run is no worse and reaches the cold final f(S) in at
        # most half the cold run's trials.
        assert warm.final_latency <= cold.final_latency
        reached_at = warm.trials_to_reach(cold.final_latency)
        assert reached_at is not None
        assert reached_at <= cold.trials_used // 2

    def test_third_pass_exact_fingerprint_hits(self):
        from repro.core.config import HARLConfig
        from repro.networks.mobilenet import build_mobilenet_v2

        config = HARLConfig.scaled(0.05)
        shared = ScheduleRegistry()
        first = self._tune(build_mobilenet_v2(), shared, 0, config)
        again = self._tune(build_mobilenet_v2(), shared, 1, config)
        # Every distinct subgraph is an exact fingerprint hit: zero trials.
        assert again.trials_used == 0
        assert again.registry_hits == len(again.tasks)
        assert again.final_latency <= first.final_latency
