"""Unit tests for the evaluation metrics."""

import pytest

from repro.core.tuner import TuningResult
from repro.experiments.metrics import normalized_performance, normalized_search_time, speedup


def _result(best, history, trials, scheduler="x"):
    return TuningResult(
        workload="w",
        scheduler=scheduler,
        best_latency=best,
        best_throughput=1.0 / best if best else 0.0,
        best_schedule=None,
        trials_used=trials,
        search_steps=0,
        history=history,
    )


class TestSpeedup:
    def test_faster_candidate(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)

    def test_slower_candidate(self):
        assert speedup(1.0, 2.0) == pytest.approx(0.5)

    def test_degenerate_candidate(self):
        assert speedup(1.0, 0.0) == 0.0
        assert speedup(1.0, float("inf")) == 0.0


class TestNormalizedPerformance:
    def test_best_scheduler_is_one(self):
        results = {"a": _result(2.0, [], 10), "b": _result(1.0, [], 10)}
        norm = normalized_performance(results)
        assert norm["b"] == pytest.approx(1.0)
        assert norm["a"] == pytest.approx(0.5)

    def test_infinite_latency_scores_zero(self):
        results = {"a": _result(float("inf"), [], 10), "b": _result(1.0, [], 10)}
        assert normalized_performance(results)["a"] == 0.0

    def test_all_infinite(self):
        results = {"a": _result(float("inf"), [], 10)}
        assert normalized_performance(results) == {"a": 0.0}


class TestNormalizedSearchTime:
    def test_faster_searcher_scores_lower(self):
        # Baseline reaches its best (2.0) at trial 100; the candidate reaches 2.0 at trial 20.
        results = {
            "ansor": _result(2.0, [(10, 5.0), (100, 2.0)], 100),
            "harl": _result(1.5, [(20, 2.0), (80, 1.5)], 100),
        }
        norm = normalized_search_time(results)
        assert norm["ansor"] == pytest.approx(1.0)
        assert norm["harl"] == pytest.approx(0.2)

    def test_unreached_target_charges_full_budget(self):
        results = {
            "ansor": _result(1.0, [(50, 1.0)], 100),
            "slow": _result(3.0, [(100, 3.0)], 120),
        }
        norm = normalized_search_time(results)
        assert norm["slow"] == pytest.approx(1.0)
        assert norm["ansor"] == pytest.approx(50 / 120)

    def test_missing_baseline_rejected(self):
        results = {"harl": _result(1.0, [(1, 1.0)], 1)}
        with pytest.raises(KeyError):
            normalized_search_time(results, baseline="ansor")
