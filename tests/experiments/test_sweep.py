"""Tests for the cross-target fleet sweep runner and its report artifact."""

import csv

import pytest

from repro.experiments.sweep import SweepReport, roofline_flops, sweep_targets
from repro.hardware.catalog import default_catalog
from repro.serving.registry import ScheduleRegistry
from repro.tensor.workloads import conv1d, gemm


@pytest.fixture
def catalog():
    return default_catalog()


@pytest.fixture
def dags():
    return [gemm(64, 64, 64), conv1d(64, 16, 32, 3, 1, 1)]


@pytest.fixture
def report(dags, tiny_config):
    return sweep_targets(
        dags, ["xeon-6226r", "epyc-7543"], n_trials=8, config=tiny_config, seed=0
    )


class TestRoofline:
    def test_bound_is_min_of_compute_and_memory_ceilings(self, catalog):
        dag = gemm(1024, 1024, 1024)
        target = catalog.get("xeon-6226r")
        expected = min(target.peak_flops,
                       dag.arithmetic_intensity() * target.dram_bandwidth)
        assert roofline_flops(dag, target) == pytest.approx(expected)

    def test_memory_bound_workload_caps_below_peak(self, catalog):
        # An elementwise-ish tiny GEMM is bandwidth-bound on every server CPU.
        dag = gemm(16, 4, 16)
        target = catalog.get("xeon-6226r")
        assert roofline_flops(dag, target) < target.peak_flops


class TestSweepTargets:
    def test_one_cell_per_workload_target_pair(self, report, dags):
        assert len(report.cells) == len(dags) * 2
        assert report.targets() == ["epyc-7543", "xeon-6226r"]
        assert sorted(report.workloads()) == sorted(dag.name for dag in dags)

    def test_cells_carry_tuned_results_and_roofline(self, report, dags, catalog):
        for dag in dags:
            for target_name in report.targets():
                cell = report.cell(dag.name, target_name)
                assert cell.latency > 0 and cell.trials >= 8
                assert cell.roofline == pytest.approx(
                    roofline_flops(dag, catalog.get(target_name))
                )
                assert 0 < cell.roofline_fraction < 1

    def test_later_targets_warm_start_from_earlier_ones(self, report):
        transfers = report.transfer_cells()
        # The first target tunes cold; every second-target run transfers.
        assert {cell.target for cell in transfers} == {"epyc-7543"}
        assert all(cell.transfer_donors == ("xeon-6226r",) for cell in transfers)
        first = [cell for cell in report.cells if cell.target == "xeon-6226r"]
        assert all(cell.transfer_donors == () for cell in first)

    def test_shared_registry_accumulates_every_pair(self, dags, tiny_config):
        registry = ScheduleRegistry()
        sweep_targets(dags, ["xeon-6226r", "epyc-7543"], n_trials=8,
                      config=tiny_config, seed=0, registry=registry)
        assert len(registry) == len(dags) * 2
        stats = registry.stats()
        assert sorted(stats["targets"]) == ["epyc-7543", "xeon-6226r"]

    def test_accepts_hardware_target_instances(self, dags, tiny_config, catalog):
        variant = catalog.derive("xeon-6226r", name="xeon-6226r-sweep-8c",
                                 register=False, num_cores=8)
        report = sweep_targets(dags[:1], [variant], n_trials=8, config=tiny_config)
        assert report.cells[0].target == "xeon-6226r-sweep-8c"

    def test_unknown_target_name_raises(self, dags, tiny_config):
        with pytest.raises(KeyError):
            sweep_targets(dags, ["not-a-device"], n_trials=8, config=tiny_config)

    def test_empty_inputs_raise(self, dags, tiny_config):
        with pytest.raises(ValueError):
            sweep_targets([], ["xeon-6226r"], config=tiny_config)
        with pytest.raises(ValueError):
            sweep_targets(dags, [], config=tiny_config)

    def test_sweep_is_deterministic_for_a_seed(self, dags, tiny_config):
        a = sweep_targets(dags, ["xeon-6226r", "epyc-7543"], n_trials=8,
                          config=tiny_config, seed=0)
        b = sweep_targets(dags, ["xeon-6226r", "epyc-7543"], n_trials=8,
                          config=tiny_config, seed=0)
        assert [c.latency for c in a.cells] == [c.latency for c in b.cells]


class TestReportArtifact:
    def test_format_renders_every_cell(self, report):
        text = report.format()
        assert "xeon-6226r" in text and "epyc-7543" in text
        assert "% roofline" in text
        assert text.count("\n") >= len(report.cells)

    def test_csv_artifact_round_trips(self, report, tmp_path):
        path = report.write_csv(tmp_path / "artifacts" / "sweep.csv")
        assert path.exists()
        with path.open(newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(SweepReport.HEADERS)
        assert len(rows) == len(report.cells) + 1
        # Transfer provenance survives the CSV round trip.
        donor_column = [row[-1] for row in rows[1:]]
        assert "xeon-6226r" in donor_column

    def test_missing_cell_raises(self, report):
        with pytest.raises(KeyError):
            report.cell("no-such-workload", "xeon-6226r")


class TestNetworkSweep:
    """sweep_networks: networks x targets over one shared registry."""

    @pytest.fixture
    def toy_networks(self):
        from repro.networks.graph import NetworkGraph, Subgraph

        def build(name):
            return NetworkGraph(
                name=name,
                subgraphs=[
                    Subgraph("mm", gemm(64, 64, 64, name=f"{name}_mm"),
                             weight=3, similarity_group="gemm"),
                    Subgraph("c1d", conv1d(64, 16, 32, 3, 1, 1,
                                           name=f"{name}_c1d"),
                             weight=1, similarity_group="conv1d"),
                ],
            )

        # Structurally identical networks under different names: the second
        # one must be answered entirely from the shared registry.
        return [build("net_a"), build("net_b")]

    def test_second_network_reuses_first(self, toy_networks, tiny_config):
        from repro.experiments.sweep import NetworkSweepReport, sweep_networks

        report = sweep_networks(
            toy_networks, ["xeon-6226r"], n_trials=16, config=tiny_config,
            seed=0,
        )
        assert len(report.cells) == 2
        first = report.cell("net_a", "xeon-6226r")
        second = report.cell("net_b", "xeon-6226r")
        assert first.trials == 16 and first.registry_hits == 0
        assert second.trials == 0 and second.registry_hits == 2
        assert second.latency == pytest.approx(first.latency)
        assert report.reused_cells() == [second]
        # Full per-run reports are retained for drill-down.
        assert report.report("net_b", "xeon-6226r").registry_hits == 2
        with pytest.raises(KeyError):
            report.cell("net_a", "rtx-3090")

    def test_second_target_transfers_across_targets(self, toy_networks, tiny_config):
        from repro.experiments.sweep import sweep_networks

        report = sweep_networks(
            toy_networks[:1], ["xeon-6226r", "epyc-7543"], n_trials=16,
            config=tiny_config, seed=0,
        )
        cross = report.cell("net_a", "epyc-7543")
        assert cross.warm_started > 0  # seeded from the xeon donors
        run = report.report("net_a", "epyc-7543")
        assert any(t.transfer_donors for t in run.tasks)

    def test_csv_and_format(self, toy_networks, tiny_config, tmp_path):
        from repro.experiments.sweep import NetworkSweepReport, sweep_networks

        report = sweep_networks(
            toy_networks[:1], ["xeon-6226r"], n_trials=8, config=tiny_config,
            seed=0,
        )
        text = report.format()
        assert "f(S) (ms)" in text and "net_a" in text
        path = report.write_csv(tmp_path / "networks.csv")
        with path.open(newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == list(NetworkSweepReport.HEADERS)
        assert len(rows) == 2

    def test_validates_inputs(self, tiny_config):
        from repro.experiments.sweep import sweep_networks

        with pytest.raises(ValueError):
            sweep_networks([], ["xeon-6226r"], config=tiny_config)
        with pytest.raises(ValueError):
            sweep_networks(["resnet50"], [], config=tiny_config)
        with pytest.raises(KeyError):
            sweep_networks(["alexnet"], ["xeon-6226r"], config=tiny_config)
