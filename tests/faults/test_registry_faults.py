"""Registry crash-recovery tests: torn appends, torn tails, compaction crashes.

The satellite regressions live here: a torn final JSONL line on *every*
shard must be tolerated (truncate-and-warn, never raise), and a compaction
killed midway must lose no entries.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec, InjectedCrash, inject
from repro.serving.registry import RegistryEntry, ScheduleRegistry


def _entry(idx, latency, target="sim-cpu"):
    return RegistryEntry(
        fingerprint=f"wl-{idx:02d}",
        target=target,
        workload=f"workload_{idx}",
        latency=float(latency),
        throughput=1.0 / float(latency),
        trials=8,
        scheduler="harl",
        schedule={"stub": idx},
        embedding=(float(idx), 1.0),
        source="test",
    )


def _best_map(registry):
    return {e.key: e.latency for e in registry.entries()}


class TestTornAppendRecovery:
    def test_torn_append_loses_no_best(self, tmp_path):
        entries = [_entry(i, 1.0 + i / 7) for i in range(8)]
        root = tmp_path / "reg"
        registry = ScheduleRegistry(root, num_shards=4)
        plan = FaultPlan.single("registry.append", "torn_write", at=4, seed=0)
        with inject(plan):
            with pytest.raises(InjectedCrash):
                for entry in entries:
                    registry.record(entry)
        assert plan.fired, "fault never fired — the append hook regressed"

        with pytest.warns(UserWarning, match="torn"):
            recovered = ScheduleRegistry(root, num_shards=4)
        assert recovered.truncated_tails == 1
        for entry in entries:  # the client retries everything unacknowledged
            recovered.record(entry)
        recovered.close()

        final = ScheduleRegistry(root, num_shards=4, strict=True)
        assert _best_map(final) == {e.key: e.latency for e in entries}

    def test_crash_without_torn_bytes_also_recovers(self, tmp_path):
        root = tmp_path / "reg"
        registry = ScheduleRegistry(root, num_shards=2)
        plan = FaultPlan.single("registry.append", "crash", at=2, seed=0)
        with inject(plan):
            with pytest.raises(InjectedCrash):
                for i in range(5):
                    registry.record(_entry(i, 1.0 + i))
        # No partial bytes were written, so the reload is warning-free.
        recovered = ScheduleRegistry(root, num_shards=2, strict=True)
        assert recovered.truncated_tails == 0
        assert len(recovered.entries()) == 2


class TestTornTailOnEveryShard:
    """Satellite regression: loading tolerates a torn final line per shard."""

    @pytest.mark.parametrize("strict", [False, True])
    def test_truncate_and_warn_instead_of_raising(self, tmp_path, strict):
        root = tmp_path / "reg"
        registry = ScheduleRegistry(root, num_shards=4)
        for i in range(12):
            registry.record(_entry(i, 2.0 - i / 20))
        registry.close()

        shards = sorted(root.glob("shard-*.jsonl"))
        torn = 0
        for shard in shards:
            lines = shard.read_text().splitlines()
            if not lines:
                continue
            head = "".join(line + "\n" for line in lines[:-1])
            shard.write_text(head + lines[-1][: max(1, len(lines[-1]) // 2)])
            torn += 1
        assert torn >= 2, "need several populated shards for this to mean anything"

        with pytest.warns(UserWarning, match="torn"):
            recovered = ScheduleRegistry(root, num_shards=4, strict=strict)
        assert recovered.truncated_tails == torn
        # Every shard ends on a line boundary again.
        for shard in sorted(root.glob("shard-*.jsonl")):
            raw = shard.read_bytes()
            assert not raw or raw.endswith(b"\n")

    def test_appending_after_repair_does_not_concatenate(self, tmp_path):
        root = tmp_path / "reg"
        registry = ScheduleRegistry(root, num_shards=1)
        registry.record(_entry(0, 2.0))
        registry.record(_entry(1, 2.0))
        registry.close()

        shard = next(root.glob("shard-*.jsonl"))
        text = shard.read_text()
        shard.write_text(text[: len(text) - 10])  # tear the final line

        with pytest.warns(UserWarning, match="torn"):
            recovered = ScheduleRegistry(root, num_shards=1)
        recovered.record(_entry(1, 2.0))  # the retry of the torn append
        recovered.close()

        final = ScheduleRegistry(root, num_shards=1, strict=True)
        assert final.skipped_lines == 0  # nothing concatenated, nothing garbled
        assert _best_map(final) == {
            ("wl-00", "sim-cpu"): 2.0,
            ("wl-01", "sim-cpu"): 2.0,
        }

    def test_complete_final_line_without_newline_is_kept(self, tmp_path):
        root = tmp_path / "reg"
        registry = ScheduleRegistry(root, num_shards=1)
        registry.record(_entry(0, 1.5))
        registry.close()

        shard = next(root.glob("shard-*.jsonl"))
        shard.write_bytes(shard.read_bytes().rstrip(b"\n"))  # newline lost, data whole

        recovered = ScheduleRegistry(root, num_shards=1, strict=True)
        assert recovered.truncated_tails == 0
        assert _best_map(recovered) == {("wl-00", "sim-cpu"): 1.5}


class TestCompactionCrashSafety:
    """Satellite regression: killing compaction midway loses no entries."""

    def _populated(self, root, num_shards=2):
        registry = ScheduleRegistry(root, num_shards=num_shards)
        for i in range(6):
            registry.record(_entry(i, 2.0))
            registry.record(_entry(i, 1.0 + i / 100))
        registry.close()
        return ScheduleRegistry(root, num_shards=num_shards)

    @pytest.mark.parametrize("where", ["mid_write", "before_replace"])
    def test_killed_compaction_loses_nothing(self, tmp_path, where):
        root = tmp_path / "reg"
        victim = self._populated(root)
        expected = _best_map(victim)

        plan = FaultPlan.single(
            "registry.compact",
            "torn_write" if where == "mid_write" else "crash",
            match=where,
            seed=1,
        )
        with inject(plan):
            with pytest.raises(InjectedCrash):
                victim.compact()
        assert plan.fired

        recovered = ScheduleRegistry(root, num_shards=2)
        assert _best_map(recovered) == expected
        assert not list(root.glob("*.tmp"))
        recovered.compact()
        recovered.close()
        assert _best_map(ScheduleRegistry(root, num_shards=2, strict=True)) == expected

    def test_orphan_tmp_cleanup_is_counted(self, tmp_path):
        root = tmp_path / "reg"
        victim = self._populated(root)
        plan = FaultPlan.single(
            "registry.compact", "torn_write", match="mid_write", seed=0
        )
        with inject(plan):
            with pytest.raises(InjectedCrash):
                victim.compact()
        assert list(root.glob("shard-*.jsonl.tmp")), "crash left no orphan to clean"

        recovered = ScheduleRegistry(root, num_shards=2)
        assert recovered.removed_orphans >= 1
        assert recovered.stats()["removed_orphans"] >= 1

    def test_compact_twice_is_idempotent(self, tmp_path):
        root = tmp_path / "reg"
        registry = self._populated(root)
        assert registry.compact() >= 1
        registry.close()
        snapshot = {f.name: f.read_bytes() for f in sorted(root.glob("shard-*.jsonl"))}

        again = ScheduleRegistry(root, num_shards=2)
        assert again.compact() == 0
        again.close()
        assert snapshot == {
            f.name: f.read_bytes() for f in sorted(root.glob("shard-*.jsonl"))
        }
