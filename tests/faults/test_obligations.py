"""Satellite 1: every gate obligation passes under several seeds, and the
gate CLI reports/exits correctly (including the failure path)."""

import json

import pytest

from repro.faults.gate import main as gate_main
from repro.faults.obligations import (
    OBLIGATIONS,
    GateReport,
    run_gate,
    run_obligation,
)
from repro.faults.scenarios import SCENARIOS, ObligationViolation

SEEDS = (0, 1, 2)


class TestEveryObligationUnderEverySeed:
    @pytest.mark.parametrize(
        "obligation", OBLIGATIONS, ids=[o.name for o in OBLIGATIONS]
    )
    @pytest.mark.parametrize("seed", SEEDS)
    def test_obligation_passes(self, obligation, seed):
        outcome = run_obligation(obligation, seed)
        assert outcome.passed, (
            f"obligation {obligation.name} failed under seed {seed}: "
            f"{outcome.message}"
        )


class TestObligationTable:
    def test_every_scenario_is_an_obligation(self):
        assert {o.scenario for o in OBLIGATIONS} == set(SCENARIOS.values())

    def test_names_are_unique_and_namespaced(self):
        names = [o.name for o in OBLIGATIONS]
        assert len(names) == len(set(names))
        assert all("." in name for name in names)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown obligation"):
            run_gate(seeds=(0,), names=["registry.not_a_thing"])


class TestGateReport:
    def test_report_schema(self, tmp_path):
        report = run_gate(seeds=(0,), names=["records.slow_flush_flagged"])
        path = tmp_path / "report.json"
        report.write(path)
        data = json.loads(path.read_text())
        assert data["schema"] == "obligation-gate/1"
        assert data["passed"] is True
        assert data["seeds"] == [0]
        (entry,) = data["obligations"]
        assert entry["name"] == "records.slow_flush_flagged"
        assert entry["passed"] is True
        (run,) = entry["runs"]
        assert run["seed"] == 0 and run["passed"] is True
        assert run["duration_s"] >= 0

    def test_failed_outcome_marks_report(self):
        def always_fails(ctx):
            raise ObligationViolation("deliberately broken")

        broken = OBLIGATIONS[0].__class__(
            name="test.always_fails",
            description="a deliberately failing obligation",
            scenario=always_fails,
        )
        outcome = run_obligation(broken, seed=0)
        assert not outcome.passed
        assert "deliberately broken" in outcome.message
        report = GateReport(seeds=[0], outcomes=[outcome])
        assert not report.passed
        assert report.failures() == [outcome]

    def test_scenario_crash_is_a_failure_not_an_error(self):
        def crashes(ctx):
            raise ZeroDivisionError("scenario bug")

        broken = OBLIGATIONS[0].__class__(
            name="test.crashes", description="crashing scenario", scenario=crashes
        )
        outcome = run_obligation(broken, seed=0)
        assert not outcome.passed
        assert "ZeroDivisionError" in outcome.message


class TestGateCli:
    def test_list_prints_table(self, capsys):
        assert gate_main(["--list"]) == 0
        out = capsys.readouterr().out
        for obligation in OBLIGATIONS:
            assert obligation.name in out

    def test_single_obligation_run_writes_report(self, tmp_path, capsys):
        report = tmp_path / "gate.json"
        code = gate_main(
            [
                "--seeds",
                "1",
                "--only",
                "records.no_double_count",
                "--report",
                str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[PASS] records.no_double_count" in out
        assert "GATE PASSED" in out
        assert json.loads(report.read_text())["passed"] is True

    def test_unknown_only_errors(self, tmp_path):
        with pytest.raises(KeyError):
            gate_main(["--only", "nope.nope", "--report", str(tmp_path / "g.json")])

    def test_zero_seeds_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            gate_main(["--seeds", "0", "--report", str(tmp_path / "g.json")])
