"""Unit tests for the fault-plan harness itself.

The gate's value rests on the harness being deterministic and precise: a
spec fires exactly where its window says, torn cuts replay for a fixed seed,
and arming is exclusive.  These tests pin that contract.
"""

import pytest

from repro.faults import (
    FAULT_POINTS,
    FaultPlan,
    FaultSpec,
    inject,
    poll,
)


class TestFaultSpecValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec("registry.nope", "crash")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("registry.append", "meteor_strike")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("registry.append", "crash", at=-1)
        with pytest.raises(ValueError):
            FaultSpec("registry.append", "crash", times=0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("records.flush", "torn_write", fraction=1.0)


class TestArrivalWindows:
    def test_fires_only_inside_at_times_window(self):
        plan = FaultPlan([FaultSpec("registry.append", "crash", at=2, times=2)])
        fired = [plan.poll("registry.append") is not None for _ in range(6)]
        assert fired == [False, False, True, True, False, False]

    def test_match_filters_arrival_counting(self):
        plan = FaultPlan(
            [FaultSpec("parallel.worker", "worker_death", at=1, match="chunk-1")]
        )
        # Non-matching arrivals must not advance the window.
        assert plan.poll("parallel.worker", "chunk-0") is None
        assert plan.poll("parallel.worker", "chunk-1") is None  # arrival 0
        assert plan.poll("parallel.worker", "chunk-0") is None
        assert plan.poll("parallel.worker", "chunk-1") is not None  # arrival 1

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            [
                FaultSpec("records.flush", "enospc"),
                FaultSpec("records.flush", "slow_disk"),
            ]
        )
        first = plan.poll("records.flush")
        assert first is not None and first.spec.kind == "enospc"
        # The winner consumed its window; the second spec never saw arrival 0,
        # so it fires on what is *its own* matching arrival 0.
        second = plan.poll("records.flush")
        assert second is not None and second.spec.kind == "slow_disk"

    def test_fired_log_records_injections(self):
        plan = FaultPlan.single("service.advance", "crash")
        plan.poll("service.advance", "abcdef")
        assert plan.fired == [("service.advance", "crash", "abcdef")]


class TestTornPrefix:
    def test_strict_prefix_always_loses_bytes(self):
        plan = FaultPlan.single("registry.append", "torn_write", seed=7)
        fired = plan.poll("registry.append")
        line = '{"key": "value", "n": 123}\n'
        torn = fired.torn_prefix(line)
        assert line.startswith(torn)
        assert 1 <= len(torn) < len(line)

    def test_seeded_cut_is_reproducible(self):
        def cut(seed):
            plan = FaultPlan.single("registry.append", "torn_write", seed=seed)
            return plan.poll("registry.append").torn_prefix("x" * 64)

        assert cut(3) == cut(3)
        assert any(cut(3) != cut(other) for other in (4, 5, 6))

    def test_fraction_overrides_rng(self):
        plan = FaultPlan([FaultSpec("registry.append", "torn_write", fraction=0.5)])
        fired = plan.poll("registry.append")
        assert fired.torn_prefix("x" * 10) == "x" * 5


class TestActivation:
    def test_poll_is_noop_when_unarmed(self):
        assert poll("registry.append", "anything") is None

    def test_unknown_point_rejected_when_armed(self):
        with inject(FaultPlan()):
            with pytest.raises(ValueError, match="unknown fault point"):
                poll("not.a.point")

    def test_plans_do_not_nest(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError, match="already active"):
                with inject(FaultPlan()):
                    pass

    def test_plan_disarms_on_exit_even_after_error(self):
        with pytest.raises(KeyError):
            with inject(FaultPlan.single("registry.append", "crash")):
                raise KeyError("boom")
        assert poll("registry.append") is None

    def test_every_documented_point_accepts_every_kind(self):
        for point in FAULT_POINTS:
            FaultSpec(point, "crash")  # constructing must not raise
