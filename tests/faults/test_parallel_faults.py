"""ParallelMeasurer fault tests: dead workers, bounded retries, broken pools.

Satellite regression: when a worker dies mid-batch and its span is retried,
the ParallelMeasurer must reproduce the serial measurer bit-for-bit —
latencies, trial accounting and progress history alike.
"""

import pytest

from repro.faults import FaultPlan, FaultSpec, WorkerDeath, inject
from repro.hardware.measurer import Measurer
from repro.hardware.parallel import ParallelMeasurer
from repro.tensor.sampler import sample_initial_schedules


@pytest.fixture
def schedules(gemm_sketch, rng):
    return sample_initial_schedules(gemm_sketch, 12, rng)


def _snapshot(measurer, workload):
    return (
        measurer.total_trials,
        measurer.trials(workload),
        measurer.best_latency(workload),
        measurer.history(workload),
    )


class TestWorkerDeathRecovery:
    def test_retried_batch_matches_serial_exactly(self, cpu, schedules):
        name = schedules[0].dag.name
        serial = Measurer(cpu, seed=3)
        expected = serial.measure(schedules)

        plan = FaultPlan.single("parallel.worker", "worker_death", match="chunk-1")
        with ParallelMeasurer(cpu, num_workers=4, seed=3) as pool:
            with inject(plan):
                got = pool.measure(schedules)
            assert pool.worker_deaths == 1
            assert pool.worker_retries == 1
            assert [r.latency for r in expected] == [r.latency for r in got]
            assert [r.trial_index for r in expected] == [r.trial_index for r in got]
            assert _snapshot(serial, name) == _snapshot(pool, name)

    def test_every_chunk_can_die_and_recover(self, cpu, schedules):
        expected = [r.latency for r in Measurer(cpu, seed=0).measure(schedules)]
        for chunk in range(4):
            plan = FaultPlan.single(
                "parallel.worker", "worker_death", match=f"chunk-{chunk}"
            )
            with ParallelMeasurer(cpu, num_workers=4, seed=0) as pool:
                with inject(plan):
                    got = [r.latency for r in pool.measure(schedules)]
            assert got == expected, f"divergence when chunk {chunk} died"

    def test_subsequent_batches_unaffected(self, cpu, schedules):
        serial = Measurer(cpu, seed=1)
        expected = serial.measure(schedules[:6]) + serial.measure(schedules[6:])
        plan = FaultPlan.single("parallel.worker", "worker_death", match="chunk-0")
        with ParallelMeasurer(cpu, num_workers=3, seed=1) as pool:
            with inject(plan):
                got = pool.measure(schedules[:6])
            got += pool.measure(schedules[6:])  # clean batch after the fault
        assert [r.latency for r in expected] == [r.latency for r in got]


class TestBoundedRetries:
    def test_permanently_dying_span_raises(self, cpu, schedules):
        plan = FaultPlan(
            [FaultSpec("parallel.worker", "worker_death", match="chunk-0", times=50)]
        )
        with ParallelMeasurer(cpu, num_workers=4, seed=0) as pool:
            with inject(plan):
                with pytest.raises(WorkerDeath, match="giving up"):
                    pool.measure(schedules)
            assert pool.worker_retries == pool.max_worker_retries

    def test_retry_budget_is_configurable(self, cpu, schedules):
        plan = FaultPlan(
            [FaultSpec("parallel.worker", "worker_death", match="chunk-0", times=50)]
        )
        with ParallelMeasurer(
            cpu, num_workers=4, seed=0, max_worker_retries=5
        ) as pool:
            with inject(plan):
                with pytest.raises(WorkerDeath):
                    pool.measure(schedules)
            assert pool.worker_retries == 5

    def test_death_on_first_retry_still_recovers(self, cpu, schedules):
        expected = [r.latency for r in Measurer(cpu, seed=2).measure(schedules)]
        plan = FaultPlan(
            [
                FaultSpec("parallel.worker", "worker_death", match="chunk-2", times=2),
            ]
        )
        with ParallelMeasurer(cpu, num_workers=4, seed=2) as pool:
            with inject(plan):
                got = [r.latency for r in pool.measure(schedules)]
            assert pool.worker_retries == 2  # first retry died too
        assert got == expected


class TestProcessMode:
    def test_injected_death_in_process_pool_recovers(self, cpu, schedules):
        expected = [r.latency for r in Measurer(cpu, seed=4).measure(schedules[:4])]
        plan = FaultPlan.single("parallel.worker", "worker_death", match="chunk-2")
        with ParallelMeasurer(cpu, num_workers=2, mode="process", seed=4) as pool:
            with inject(plan):
                got = [r.latency for r in pool.measure(schedules[:4])]
            assert pool.worker_deaths == 1
        assert got == expected
