"""Record-store fault tests: ENOSPC rollback, slow flushes, torn tails."""

import errno

import pytest

from repro.faults import FaultPlan, inject
from repro.records import MeasureRecord, RecordStore


def _measure(idx):
    return MeasureRecord(
        workload="wl",
        latency=1.0 + idx * 0.01,
        throughput=1.0 / (1.0 + idx * 0.01),
        trial_index=idx,
        schedule={"stub": idx},
        scheduler="harl",
        fingerprint="fp-test",
    )


class TestEnospcRollback:
    def test_failed_append_is_invisible_everywhere(self, tmp_path):
        path = tmp_path / "records.jsonl"
        store = RecordStore(path)
        for i in range(1, 4):
            store.append_measure(_measure(i))

        with inject(FaultPlan.single("records.flush", "enospc", seed=0)):
            with pytest.raises(OSError) as excinfo:
                store.append_measure(_measure(4))
        assert excinfo.value.errno == errno.ENOSPC
        assert [m.trial_index for m in store.query(kind="measure")] == [1, 2, 3]
        assert store.flush_failures == 1

        # Disk agrees with memory: the partial line was rolled back.
        on_disk = RecordStore.load(path, strict=True)
        assert [m.trial_index for m in on_disk.query(kind="measure")] == [1, 2, 3]

    def test_retry_after_enospc_lands_exactly_once(self, tmp_path):
        path = tmp_path / "records.jsonl"
        store = RecordStore(path)
        with inject(FaultPlan.single("records.flush", "enospc", at=1, seed=0)):
            store.append_measure(_measure(1))
            with pytest.raises(OSError):
                store.append_measure(_measure(2))
            store.append_measure(_measure(2))  # the retry
        store.close()
        reloaded = RecordStore.load(path, strict=True)
        assert [m.trial_index for m in reloaded.query(kind="measure")] == [1, 2]

    def test_result_appends_roll_back_too(self, tmp_path):
        from repro.records import TuningRecord

        path = tmp_path / "records.jsonl"
        store = RecordStore(path)
        record = TuningRecord(
            workload="wl",
            scheduler="harl",
            latency=1.0,
            throughput=1.0,
            trials_used=4,
            schedule=None,
            history=[],
        )
        with inject(FaultPlan.single("records.flush", "enospc", match="result")):
            with pytest.raises(OSError):
                store.append_result(record)
        assert store.query(kind="result") == []
        store.append_result(record)
        store.close()
        assert len(RecordStore.load(path, strict=True).query(kind="result")) == 1


class TestSlowFlush:
    def test_slow_flush_is_counted_not_fatal(self, tmp_path):
        store = RecordStore(tmp_path / "records.jsonl")
        with inject(FaultPlan.single("records.flush", "slow_disk", at=1, seed=0)):
            for i in range(1, 4):
                store.append_measure(_measure(i))
        assert store.slow_flushes == 1
        assert store.flush_failures == 0
        assert [m.trial_index for m in store.query(kind="measure")] == [1, 2, 3]

    def test_fast_flushes_are_not_flagged(self, tmp_path):
        store = RecordStore(tmp_path / "records.jsonl")
        for i in range(1, 6):
            store.append_measure(_measure(i))
        assert store.slow_flushes == 0


class TestTornTail:
    def test_torn_final_line_truncated_with_warning(self, tmp_path):
        path = tmp_path / "records.jsonl"
        store = RecordStore(path)
        for i in range(1, 4):
            store.append_measure(_measure(i))
        store.close()

        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 15])  # tear the last line

        with pytest.warns(UserWarning, match="torn"):
            recovered = RecordStore.load(path, strict=True)
        assert recovered.truncated_tails == 1
        assert [m.trial_index for m in recovered.query(kind="measure")] == [1, 2]

    def test_append_after_torn_tail_repair_is_clean(self, tmp_path):
        path = tmp_path / "records.jsonl"
        store = RecordStore(path)
        store.append_measure(_measure(1))
        store.append_measure(_measure(2))
        store.close()

        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 10])

        with pytest.warns(UserWarning, match="torn"):
            recovered = RecordStore(path)
        recovered.append_measure(_measure(2))  # retry of the torn record
        recovered.close()

        final = RecordStore.load(path, strict=True)
        assert final.skipped_lines == 0
        assert [m.trial_index for m in final.query(kind="measure")] == [1, 2]
