"""Property test (satellite 1): the registry recovered after ANY single
injected fault equals the fault-free registry on every (fingerprint, target)
key — across fault locations, seeds and shard counts."""

import tempfile
import warnings
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec, InjectedCrash, inject
from repro.serving.registry import RegistryEntry, ScheduleRegistry

#: One spec per distinct place a single fault can strike the registry's
#: write paths: each of the first five appends torn, plus a compaction
#: killed mid temp-write or just before the atomic publish.
FAULTS = [
    FaultSpec("registry.append", "torn_write", at=i) for i in range(5)
] + [
    FaultSpec("registry.compact", "torn_write", match="mid_write"),
    FaultSpec("registry.compact", "crash", match="before_replace"),
]


def _entries(seed):
    # Deterministic, seed-varied latencies; several entries improve earlier
    # keys so compaction always has stale lines to chew on.
    entries = []
    for i in range(8):
        latency = 1.0 + ((i * 7919 + seed * 104729) % 13) / 13
        entries.append(
            RegistryEntry(
                fingerprint=f"wl-{i % 5:02d}",  # collisions → improvements
                target="sim-cpu",
                workload=f"workload_{i % 5}",
                latency=latency,
                throughput=1.0 / latency,
                trials=4,
                scheduler="harl",
                schedule={"stub": i},
                embedding=(float(i), 1.0),
                source="property",
            )
        )
    return entries


def _best_map(root, num_shards):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        registry = ScheduleRegistry(root, num_shards=num_shards)
    return {e.key: e.latency for e in registry.entries()}


@settings(deadline=None, max_examples=30)
@given(
    fault_index=st.integers(min_value=0, max_value=len(FAULTS) - 1),
    seed=st.integers(min_value=0, max_value=7),
    num_shards=st.sampled_from([1, 2, 4]),
)
def test_single_fault_recovery_equals_fault_free(fault_index, seed, num_shards):
    spec = FAULTS[fault_index]
    entries = _entries(seed)
    # A fresh scratch dir per example (tmp_path would be reused across
    # hypothesis examples and trip its health checks).
    with tempfile.TemporaryDirectory() as scratch:
        root = Path(scratch)
        clean_root, faulted_root = root / "clean", root / "faulted"

        clean = ScheduleRegistry(clean_root, num_shards=num_shards)
        for entry in entries:
            clean.record(entry)
        clean.compact()
        clean.close()
        expected = _best_map(clean_root, num_shards)

        victim = ScheduleRegistry(faulted_root, num_shards=num_shards)
        plan = FaultPlan([spec], seed=seed)
        with inject(plan):
            try:
                for entry in entries:
                    victim.record(entry)
                victim.compact()
            except InjectedCrash:
                pass

        # Restart: reload, then retry the whole ingest (append-path faults
        # lose un-acknowledged records; retries are idempotent because the
        # registry only accepts strict improvements), then re-compact.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            recovered = ScheduleRegistry(faulted_root, num_shards=num_shards)
        for entry in entries:
            recovered.record(entry)
        recovered.compact()
        recovered.close()

        assert _best_map(faulted_root, num_shards) == expected, (
            f"fault {spec} (seed {seed}, {num_shards} shards) "
            "left the registry diverged from a fault-free run"
        )
