"""TuningService fault tests: crash-between-advance-and-finish, abort paths.

Satellite regressions: coalesced waiters must be released (not deadlocked)
when the underlying tune raises, and a service crashed between ``advance``
and ``finish`` must recover its job from the record store on restart.
"""

import pytest

from repro.faults import FaultPlan, InjectedCrash, inject
from repro.records import RecordStore
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import (
    SOURCE_REGISTRY,
    SOURCE_SCHEDULED,
    TuningRequest,
    TuningService,
)
from repro.tensor.workloads import gemm


class _ExplodingScheduler:
    """Scheduler double whose every entry point raises."""

    def tune_round(self, dag, max_measures):
        raise RuntimeError("injected scheduler failure")

    def finalize(self, dag):
        raise RuntimeError("injected scheduler failure")


@pytest.fixture
def exploding_service(tiny_config):
    return TuningService(
        registry=ScheduleRegistry(),
        config=tiny_config,
        seed=0,
        scheduler_factory=lambda name, seed, provider: _ExplodingScheduler(),
    )


class TestWaitersReleasedOnError:
    def test_coalesced_waiters_all_resolve(self, exploding_service):
        service = exploding_service
        handles = [
            service.submit(
                TuningRequest(dag=gemm(64, 64, 64, name=f"client_{i}"), n_trials=8)
            )
            for i in range(4)
        ]
        with pytest.raises(RuntimeError, match="injected scheduler failure"):
            service.run()

        assert all(h.done for h in handles)
        assert all(
            "injected scheduler failure" in h.result.extras["error"] for h in handles
        )
        assert service.active_jobs() == 0
        assert service.aborted_jobs == 1

    def test_advance_releases_waiters_too(self, exploding_service):
        service = exploding_service
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=8))
        with pytest.raises(RuntimeError):
            service.advance(handle, max_measures=4)
        assert handle.done
        assert service.active_jobs() == 0

    def test_failed_key_is_resubmittable(self, exploding_service):
        service = exploding_service
        service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=8))
        with pytest.raises(RuntimeError):
            service.run()
        retry = service.submit(
            TuningRequest(dag=gemm(64, 64, 64, name="retry"), n_trials=8)
        )
        assert retry.source == SOURCE_SCHEDULED
        assert service.jobs_created == 2

    def test_aborted_result_reports_partial_trials(self, tiny_config):
        # The scheduler dies on its *second* round: the abort result must
        # still carry the first round's accounting.
        class _DiesOnSecondRound:
            def __init__(self, inner):
                self.inner = inner
                self.rounds = 0
                self.measurer = inner.measurer

            def tune_round(self, dag, max_measures):
                self.rounds += 1
                if self.rounds >= 2:
                    raise RuntimeError("died mid-tuning")
                return self.inner.tune_round(dag, max_measures=max_measures)

            def finalize(self, dag):
                return self.inner.finalize(dag)

        from repro.core.scheduler import HARLScheduler
        from repro.hardware.target import cpu_target

        def factory(name, seed, provider):
            return _DiesOnSecondRound(
                HARLScheduler(target=cpu_target(), config=tiny_config, seed=seed)
            )

        service = TuningService(
            registry=ScheduleRegistry(),
            config=tiny_config,
            seed=0,
            scheduler_factory=factory,
        )
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=64))
        with pytest.raises(RuntimeError, match="died mid-tuning"):
            service.run()
        assert handle.done
        assert handle.result.trials_used > 0
        assert handle.result.best_latency < float("inf")
        assert "died mid-tuning" in handle.result.extras["error"]


class TestCrashBetweenAdvanceAndFinish:
    def _crashed_state(self, tmp_path, tiny_config, seed=0):
        registry_root = tmp_path / "registry"
        records_path = tmp_path / "records.jsonl"
        store = RecordStore(records_path)
        service = TuningService(
            registry=ScheduleRegistry(registry_root, num_shards=4),
            config=tiny_config,
            seed=seed,
            record_store=store,
        )
        handle = service.submit(TuningRequest(dag=gemm(64, 64, 64), n_trials=12))
        service.advance(handle, max_measures=4)
        with inject(FaultPlan.single("service.advance", "crash", seed=seed)):
            with pytest.raises(InjectedCrash):
                service.advance(handle, max_measures=4)
        service.registry.close()
        store.close()
        return registry_root, records_path, handle.fingerprint

    def test_recover_from_records_restores_the_job(self, tmp_path, tiny_config):
        registry_root, records_path, fingerprint = self._crashed_state(
            tmp_path, tiny_config
        )
        registry = ScheduleRegistry(registry_root, num_shards=4)
        store = RecordStore.load(records_path)
        assert store.query(kind="measure"), "measurements must survive the crash on disk"

        revived = TuningService(
            registry=registry, config=tiny_config, seed=0, record_store=store
        )
        assert registry.lookup(fingerprint, revived.target.name, k=0).entry is None
        assert revived.recover_from_records() >= 1

        entry = registry.lookup(fingerprint, revived.target.name, k=0).entry
        assert entry is not None
        assert entry.latency == min(
            m.latency for m in store.query(kind="measure") if m.fingerprint == fingerprint
        )

        hit = revived.submit(
            TuningRequest(dag=gemm(64, 64, 64, name="after_restart"), n_trials=12)
        )
        assert hit.source == SOURCE_REGISTRY
        assert hit.result.trials_used == 0

    def test_recovery_is_idempotent(self, tmp_path, tiny_config):
        registry_root, records_path, _ = self._crashed_state(tmp_path, tiny_config)
        registry = ScheduleRegistry(registry_root, num_shards=4)
        store = RecordStore.load(records_path)
        revived = TuningService(
            registry=registry, config=tiny_config, seed=0, record_store=store
        )
        assert revived.recover_from_records() >= 1
        before = {e.key: e.latency for e in registry.entries()}
        assert revived.recover_from_records() == 0  # nothing improves twice
        assert {e.key: e.latency for e in registry.entries()} == before

    def test_recover_without_store_is_a_noop(self, tiny_config):
        service = TuningService(registry=ScheduleRegistry(), config=tiny_config)
        assert service.recover_from_records() == 0
