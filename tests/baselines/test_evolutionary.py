"""Unit tests for the evolutionary search baseline component."""

import numpy as np
import pytest

from repro.baselines.evolutionary import EvolutionarySearch
from repro.costmodel.model import RandomCostModel, ScheduleCostModel
from repro.hardware.simulator import LatencySimulator
from repro.tensor.factors import product
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import gemm


@pytest.fixture
def big_sketch():
    return generate_sketches(gemm(256, 256, 256))[0]


@pytest.fixture
def trained_cost_model(big_sketch, cpu, rng):
    model = ScheduleCostModel(min_samples=16, retrain_interval=8, seed=0)
    sim = LatencySimulator(cpu)
    schedules = sample_initial_schedules(big_sketch, 64, rng)
    model.update(schedules, [sim.throughput(s) for s in schedules])
    return model


class TestSearch:
    def test_returns_sorted_unique_candidates(self, big_sketch, trained_cost_model, rng):
        search = EvolutionarySearch(trained_cost_model, population_size=16, generations=2, rng=rng)
        candidates = search.search(big_sketch)
        scores = [score for _s, score in candidates]
        assert scores == sorted(scores, reverse=True)
        signatures = {s.signature() for s, _score in candidates}
        assert len(signatures) == len(candidates)

    def test_all_candidates_are_valid_schedules(self, big_sketch, trained_cost_model, rng):
        search = EvolutionarySearch(trained_cost_model, population_size=16, generations=3, rng=rng)
        for schedule, _score in search.search(big_sketch):
            for sizes, (_n, _k, extent, _l) in zip(schedule.tile_sizes, big_sketch.tiled_iters):
                assert product(sizes) == extent

    def test_visited_counter(self, big_sketch, trained_cost_model, rng):
        search = EvolutionarySearch(trained_cost_model, population_size=10, generations=3, rng=rng)
        search.search(big_sketch)
        assert search.visited == 10 * 4  # generations + final scoring pass

    def test_search_finds_better_candidates_than_random_with_trained_model(
        self, big_sketch, trained_cost_model, cpu, rng
    ):
        """With a trained cost model, evolution should beat pure random sampling."""
        sim = LatencySimulator(cpu)
        search = EvolutionarySearch(trained_cost_model, population_size=64, generations=4, rng=rng)
        evolved = search.search(big_sketch)[:8]
        evolved_best = min(sim.latency(s) for s, _ in evolved)
        random_best = min(
            sim.latency(s) for s in sample_initial_schedules(big_sketch, 8, np.random.default_rng(123))
        )
        assert evolved_best < random_best * 1.3  # at least competitive, usually better

    def test_warm_start_schedules_survive_into_history(self, big_sketch, trained_cost_model, rng):
        warm = sample_initial_schedules(big_sketch, 2, rng)
        search = EvolutionarySearch(trained_cost_model, population_size=8, generations=1, rng=rng)
        candidates = search.search(big_sketch, warm_start=warm)
        signatures = {s.signature() for s, _ in candidates}
        assert warm[0].signature() in signatures

    def test_crossover_preserves_validity(self, big_sketch, rng):
        search = EvolutionarySearch(RandomCostModel(), rng=rng)
        parents = sample_initial_schedules(big_sketch, 2, rng)
        child = search._crossover(parents[0], parents[1])
        for sizes, (_n, _k, extent, _l) in zip(child.tile_sizes, big_sketch.tiled_iters):
            assert product(sizes) == extent

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EvolutionarySearch(RandomCostModel(), population_size=1)
        with pytest.raises(ValueError):
            EvolutionarySearch(RandomCostModel(), generations=0)
