"""Unit tests for the Ansor-like baseline scheduler."""

import numpy as np
import pytest

from repro.baselines.ansor import AnsorConfig, AnsorScheduler
from repro.core.config import HARLConfig
from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import gemm, softmax


@pytest.fixture
def ansor_config():
    return AnsorConfig(population_size=16, generations=2, measures_per_round=4)


@pytest.fixture
def tiny_network():
    return NetworkGraph(
        name="tiny-net-ansor",
        subgraphs=[
            Subgraph("mm", gemm(128, 128, 128, name="ansor_mm"), weight=4, similarity_group="gemm"),
            Subgraph("soft", softmax(128, 64, name="ansor_soft"), weight=2, similarity_group="softmax"),
        ],
    )


class TestAnsorConfig:
    def test_from_harl_matches_episode_width(self):
        harl = HARLConfig.scaled(0.125)
        cfg = AnsorConfig.from_harl(harl)
        assert cfg.population_size == harl.num_tracks
        assert cfg.measures_per_round == harl.measures_per_round


class TestOperatorTuning:
    def test_budget_respected(self, ansor_config, gemm_dag):
        scheduler = AnsorScheduler(config=ansor_config, seed=0)
        result = scheduler.tune(gemm_dag, n_trials=12)
        assert result.scheduler == "ansor"
        assert 12 <= result.trials_used <= 12 + ansor_config.measures_per_round
        assert np.isfinite(result.best_latency)
        assert result.best_schedule is not None

    def test_history_nonincreasing(self, ansor_config, gemm_dag):
        result = AnsorScheduler(config=ansor_config, seed=0).tune(gemm_dag, n_trials=16)
        bests = [latency for _t, latency in result.history]
        assert all(b <= a for a, b in zip(bests, bests[1:]))

    def test_search_steps_counted(self, ansor_config, gemm_dag):
        result = AnsorScheduler(config=ansor_config, seed=0).tune(gemm_dag, n_trials=8)
        assert result.search_steps >= ansor_config.population_size

    def test_rejects_bad_budget(self, ansor_config, gemm_dag):
        with pytest.raises(ValueError):
            AnsorScheduler(config=ansor_config).tune(gemm_dag, n_trials=0)

    def test_deterministic_given_seed(self, ansor_config, gemm_dag):
        a = AnsorScheduler(config=ansor_config, seed=7).tune(gemm_dag, n_trials=8)
        b = AnsorScheduler(config=ansor_config, seed=7).tune(gemm_dag, n_trials=8)
        assert a.best_latency == pytest.approx(b.best_latency)


class TestNetworkTuning:
    def test_all_tasks_tuned(self, ansor_config, tiny_network):
        scheduler = AnsorScheduler(config=ansor_config, seed=0)
        result = scheduler.tune_network(tiny_network, n_trials=24)
        assert set(result.task_results) == {"mm", "soft"}
        assert np.isfinite(result.best_latency)
        assert sum(result.allocations.values()) == result.trials_used

    def test_latency_history_monotone_once_finite(self, ansor_config, tiny_network):
        result = AnsorScheduler(config=ansor_config, seed=1).tune_network(tiny_network, n_trials=24)
        finite = [v for _t, v in result.latency_history if np.isfinite(v)]
        assert finite
        assert all(b <= a * 1.0001 for a, b in zip(finite, finite[1:]))
