"""Unit tests for the greedy gradient task scheduler."""

import numpy as np
import pytest

from repro.baselines.task_scheduler import GradientTaskScheduler
from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import gemm, softmax


@pytest.fixture
def network():
    return NetworkGraph(
        name="toy",
        subgraphs=[
            Subgraph("heavy", gemm(256, 256, 256, name="ts_heavy"), weight=10, similarity_group="gemm"),
            Subgraph("light", gemm(64, 64, 64, name="ts_light"), weight=1, similarity_group="gemm"),
            Subgraph("soft", softmax(128, 64, name="ts_soft"), weight=2, similarity_group="softmax"),
        ],
    )


class TestGradientTaskScheduler:
    def test_warmup_visits_every_task_once(self, network):
        ts = GradientTaskScheduler(network)
        first_three = []
        for latency in (1.0, 2.0, 3.0):
            task = ts.next_task()
            first_three.append(task)
            ts.record(task, latency, trials=4)
        assert set(first_three) == {"heavy", "light", "soft"}

    def test_greedy_prefers_heavy_task_after_warmup(self, network):
        ts = GradientTaskScheduler(network)
        # Warm up with comparable per-instance latencies.
        for task, latency in (("heavy", 1.0), ("light", 1.0), ("soft", 1.0)):
            ts.record(task, latency, trials=4)
        # The heavy task has 10x weight, so the expected benefit is largest there.
        assert ts.next_task() == "heavy"

    def test_allocations_accumulate(self, network):
        ts = GradientTaskScheduler(network)
        ts.record("heavy", 1.0, trials=8)
        ts.record("heavy", 0.9, trials=8)
        assert ts.allocations["heavy"] == 16

    def test_estimated_latency(self, network):
        ts = GradientTaskScheduler(network)
        assert ts.estimated_latency() == float("inf")
        ts.record("heavy", 1.0)
        ts.record("light", 2.0)
        ts.record("soft", 3.0)
        assert ts.estimated_latency() == pytest.approx(10 * 1.0 + 1 * 2.0 + 2 * 3.0)

    def test_rewards_shape(self, network):
        ts = GradientTaskScheduler(network)
        rewards = ts.rewards()
        assert rewards.shape == (3,)
        assert np.allclose(rewards, 1.0)  # all untuned

    def test_record_unknown_task_rejected(self, network):
        ts = GradientTaskScheduler(network)
        with pytest.raises(KeyError):
            ts.record("ghost", 1.0)

    def test_greedy_selection_is_deterministic(self, network):
        """Greedy allocation has no exploration: with unchanged state it keeps
        returning the same task — the behaviour Observation 1 (Fig. 1a)
        criticises and the MAB replaces."""
        ts = GradientTaskScheduler(network)
        for task in ("heavy", "light", "soft"):
            ts.record(task, 1.0, trials=4)
        first = ts.next_task()
        assert all(ts.next_task() == first for _ in range(10))
