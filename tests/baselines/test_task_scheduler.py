"""Unit tests for the greedy gradient task scheduler."""

import numpy as np
import pytest

from repro.baselines.task_scheduler import GradientTaskScheduler
from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import gemm, softmax


@pytest.fixture
def network():
    return NetworkGraph(
        name="toy",
        subgraphs=[
            Subgraph("heavy", gemm(256, 256, 256, name="ts_heavy"), weight=10, similarity_group="gemm"),
            Subgraph("light", gemm(64, 64, 64, name="ts_light"), weight=1, similarity_group="gemm"),
            Subgraph("soft", softmax(128, 64, name="ts_soft"), weight=2, similarity_group="softmax"),
        ],
    )


class TestGradientTaskScheduler:
    def test_warmup_visits_every_task_once(self, network):
        ts = GradientTaskScheduler(network)
        first_three = []
        for latency in (1.0, 2.0, 3.0):
            task = ts.next_task()
            first_three.append(task)
            ts.record(task, latency, trials=4)
        assert set(first_three) == {"heavy", "light", "soft"}

    def test_greedy_prefers_heavy_task_after_warmup(self, network):
        ts = GradientTaskScheduler(network)
        # Warm up with comparable per-instance latencies.
        for task, latency in (("heavy", 1.0), ("light", 1.0), ("soft", 1.0)):
            ts.record(task, latency, trials=4)
        # The heavy task has 10x weight, so the expected benefit is largest there.
        assert ts.next_task() == "heavy"

    def test_allocations_accumulate(self, network):
        ts = GradientTaskScheduler(network)
        ts.record("heavy", 1.0, trials=8)
        ts.record("heavy", 0.9, trials=8)
        assert ts.allocations["heavy"] == 16

    def test_estimated_latency(self, network):
        ts = GradientTaskScheduler(network)
        assert ts.estimated_latency() == float("inf")
        ts.record("heavy", 1.0)
        ts.record("light", 2.0)
        ts.record("soft", 3.0)
        assert ts.estimated_latency() == pytest.approx(10 * 1.0 + 1 * 2.0 + 2 * 3.0)

    def test_rewards_shape(self, network):
        ts = GradientTaskScheduler(network)
        rewards = ts.rewards()
        assert rewards.shape == (3,)
        assert np.allclose(rewards, 1.0)  # all untuned

    def test_record_unknown_task_rejected(self, network):
        ts = GradientTaskScheduler(network)
        with pytest.raises(KeyError):
            ts.record("ghost", 1.0)

    def test_record_validates_latency_and_trials(self, network):
        """Regression: zero / negative / NaN latencies and negative trials
        used to be accepted silently and poisoned the gradient estimates."""
        ts = GradientTaskScheduler(network)
        for bad_latency in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                ts.record("heavy", bad_latency)
        with pytest.raises(ValueError):
            ts.record("heavy", 1.0, trials=-4)
        # Nothing was recorded by the rejected calls.
        assert ts.states["heavy"].rounds == 0
        assert ts.allocations["heavy"] == 0

    def test_record_accepts_failed_round_inf(self, network):
        """+inf marks a round whose measurements all failed; it is recorded
        (the reward path maps it to zero priority, not an error)."""
        ts = GradientTaskScheduler(network)
        ts.record("heavy", float("inf"), trials=4)
        assert ts.states["heavy"].rounds == 1
        assert ts.allocations["heavy"] == 4

    def test_untagged_subgraphs_get_empty_isolated_groups(self):
        """Regression: subgraphs without a similarity group or an ``op`` tag
        all shared the empty-string group, so Eq. 3's M(a) term transferred
        throughput between unrelated operators."""
        dags = [gemm(64, 64, 64, name=f"untagged_{i}") for i in range(2)]
        for dag in dags:
            dag.tags.clear()
        network = NetworkGraph(
            name="untagged",
            subgraphs=[
                Subgraph("a", dags[0], weight=1),
                Subgraph("b", dags[1], weight=1),
            ],
        )
        ts = GradientTaskScheduler(network)
        assert ts.states["a"].similarity_group == ""
        assert ts.states["b"].similarity_group == ""
        # Identical histories => identical rewards: no cross-talk through
        # the empty group even though `a` is much slower than `b`.
        ts.record("a", 1.0, trials=4)
        ts.record("b", 0.001, trials=4)
        ts.record("a", 1.0, trials=4)
        ts.record("b", 0.001, trials=4)
        from repro.core.subgraph_reward import subgraph_reward

        states = [ts.states["a"], ts.states["b"]]
        slow_reward = subgraph_reward(ts.states["a"], states)
        # The slow task's reward must be its own decay bound, not inflated
        # by the fast task's throughput.
        assert slow_reward == pytest.approx(1.0 * 0.8 * (1.0 / 2))

    def test_next_task_among_restricts_candidates(self, network):
        ts = GradientTaskScheduler(network)
        for task in ("heavy", "light", "soft"):
            ts.record(task, 1.0, trials=4)
        assert ts.next_task() == "heavy"
        assert ts.next_task(among=["light", "soft"]) in ("light", "soft")
        with pytest.raises(ValueError):
            ts.next_task(among=[])

    def test_next_task_among_warms_up_subset_first(self, network):
        ts = GradientTaskScheduler(network)
        ts.record("heavy", 1.0, trials=4)
        assert ts.next_task(among=["heavy", "soft"]) == "soft"  # untuned first

    def test_greedy_selection_is_deterministic(self, network):
        """Greedy allocation has no exploration: with unchanged state it keeps
        returning the same task — the behaviour Observation 1 (Fig. 1a)
        criticises and the MAB replaces."""
        ts = GradientTaskScheduler(network)
        for task in ("heavy", "light", "soft"):
            ts.record(task, 1.0, trials=4)
        first = ts.next_task()
        assert all(ts.next_task() == first for _ in range(10))
