"""Unit tests for the AutoTVM-style simulated-annealing baseline."""

import numpy as np
import pytest

from repro.baselines.autotvm import SimulatedAnnealingScheduler
from repro.networks.bert import build_bert


class TestSimulatedAnnealing:
    def test_tunes_operator_within_budget(self, gemm_dag):
        scheduler = SimulatedAnnealingScheduler(
            seed=0, num_chains=8, steps_per_round=8, measures_per_round=4
        )
        result = scheduler.tune(gemm_dag, n_trials=8)
        assert result.scheduler == "autotvm-sa"
        assert np.isfinite(result.best_latency)
        assert result.trials_used >= 8
        assert result.search_steps > 0

    def test_temperature_cools(self, gemm_dag):
        scheduler = SimulatedAnnealingScheduler(
            seed=0, num_chains=8, steps_per_round=4, measures_per_round=4,
            initial_temperature=1.0, cooling=0.5,
        )
        result = scheduler.tune(gemm_dag, n_trials=8)
        assert result.extras["final_temperature"] < 1.0

    def test_history_nonincreasing(self, gemm_dag):
        scheduler = SimulatedAnnealingScheduler(
            seed=1, num_chains=8, steps_per_round=8, measures_per_round=4
        )
        result = scheduler.tune(gemm_dag, n_trials=12)
        bests = [latency for _t, latency in result.history]
        assert all(b <= a for a, b in zip(bests, bests[1:]))

    def test_network_unsupported(self):
        with pytest.raises(NotImplementedError):
            SimulatedAnnealingScheduler(seed=0).tune_network(build_bert(), n_trials=4)

    def test_invalid_parameters_rejected(self, gemm_dag):
        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler(num_chains=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler().tune(gemm_dag, n_trials=0)
