"""Unit tests for the Flextensor-like fixed-length RL baseline."""

import numpy as np
import pytest

from repro.baselines.flextensor import FlextensorScheduler
from repro.networks.bert import build_bert


class TestFlextensor:
    def test_tunes_single_operator(self, tiny_config, gemm_dag):
        scheduler = FlextensorScheduler(config=tiny_config, seed=0)
        result = scheduler.tune(gemm_dag, n_trials=8)
        assert result.scheduler == "flextensor"
        assert np.isfinite(result.best_latency)
        assert result.trials_used >= 8

    def test_records_critical_positions(self, tiny_config, gemm_dag):
        scheduler = FlextensorScheduler(config=tiny_config, seed=0)
        result = scheduler.tune(gemm_dag, n_trials=8)
        positions = result.extras["critical_positions"]
        assert len(positions) >= tiny_config.num_tracks
        assert all(0.0 <= p <= 1.0 for p in positions)

    def test_uses_single_sketch(self, tiny_config, gemm_dag):
        scheduler = FlextensorScheduler(config=tiny_config, seed=0)
        scheduler.tune(gemm_dag, n_trials=8)
        searcher = scheduler._searchers[gemm_dag.name]
        assert searcher.sketch.key == "tiling"

    def test_network_tuning_unsupported(self, tiny_config):
        scheduler = FlextensorScheduler(config=tiny_config, seed=0)
        with pytest.raises(NotImplementedError):
            scheduler.tune_network(build_bert(), n_trials=10)

    def test_rejects_bad_budget(self, tiny_config, gemm_dag):
        with pytest.raises(ValueError):
            FlextensorScheduler(config=tiny_config).tune(gemm_dag, n_trials=0)
