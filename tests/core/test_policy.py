"""Unit tests for the NumPy MLP and Adam optimiser."""

import numpy as np
import pytest

from repro.core.policy import Adam, MultiHeadMLP, log_softmax, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(6, 5))
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs > 0)

    def test_stability_with_large_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(0.5)

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(1).normal(size=(4, 7))
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestMultiHeadMLP:
    def test_forward_shapes(self):
        net = MultiHeadMLP(10, (16, 16), (5, 3), rng=np.random.default_rng(0))
        outputs, _ = net.forward(np.zeros((7, 10)))
        assert outputs[0].shape == (7, 5)
        assert outputs[1].shape == (7, 3)

    def test_forward_accepts_single_vector(self):
        net = MultiHeadMLP(4, (8,), (2,), rng=np.random.default_rng(0))
        outputs, _ = net.forward(np.zeros(4))
        assert outputs[0].shape == (1, 2)

    def test_parameters_roundtrip(self):
        net = MultiHeadMLP(4, (8, 8), (2, 3), rng=np.random.default_rng(0))
        params = [p.copy() for p in net.parameters()]
        net.set_parameters(params)
        outputs_a, _ = net.forward(np.ones((2, 4)))
        net2 = MultiHeadMLP(4, (8, 8), (2, 3), rng=np.random.default_rng(1))
        net2.set_parameters(params)
        outputs_b, _ = net2.forward(np.ones((2, 4)))
        assert np.allclose(outputs_a[0], outputs_b[0])

    def test_set_parameters_length_checked(self):
        net = MultiHeadMLP(4, (8,), (2,), rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            net.set_parameters(net.parameters()[:-1])

    def test_requires_at_least_one_head(self):
        with pytest.raises(ValueError):
            MultiHeadMLP(4, (8,), ())

    def test_backward_gradient_matches_finite_differences(self):
        """The analytic gradient of a scalar loss matches numeric differentiation."""
        rng = np.random.default_rng(3)
        net = MultiHeadMLP(5, (6,), (4,), rng=rng)
        x = rng.normal(size=(3, 5))
        target = rng.normal(size=(3, 4))

        def loss_value():
            out, _ = net.forward(x)
            return 0.5 * float(np.sum((out[0] - target) ** 2))

        out, cache = net.forward(x)
        grads = net.backward(cache, [out[0] - target])

        params = net.parameters()
        eps = 1e-6
        # Check a handful of coordinates across different parameter tensors.
        for p_idx in (0, 1, 2, 3):
            flat = params[p_idx].reshape(-1)
            for coord in (0, flat.size // 2):
                original = flat[coord]
                flat[coord] = original + eps
                plus = loss_value()
                flat[coord] = original - eps
                minus = loss_value()
                flat[coord] = original
                numeric = (plus - minus) / (2 * eps)
                analytic = grads[p_idx].reshape(-1)[coord]
                assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_backward_requires_one_grad_per_head(self):
        net = MultiHeadMLP(4, (8,), (2, 3), rng=np.random.default_rng(0))
        out, cache = net.forward(np.zeros((1, 4)))
        with pytest.raises(ValueError):
            net.backward(cache, [np.zeros((1, 2))])


class TestAdam:
    def test_minimises_quadratic(self):
        rng = np.random.default_rng(0)
        param = rng.normal(size=(4,))
        target = np.array([1.0, -2.0, 0.5, 3.0])
        opt = Adam([param], lr=0.05)
        for _ in range(500):
            grad = 2 * (param - target)
            opt.step([grad])
        assert np.allclose(param, target, atol=1e-2)

    def test_gradient_clipping(self):
        param = np.zeros(3)
        opt = Adam([param], lr=0.1, max_grad_norm=1.0)
        opt.step([np.full(3, 1e6)])
        # The clipped step is bounded by the learning rate scale.
        assert np.all(np.abs(param) < 1.0)

    def test_mismatched_grads_rejected(self):
        opt = Adam([np.zeros(2)], lr=0.1)
        with pytest.raises(ValueError):
            opt.step([np.zeros(2), np.zeros(2)])

    def test_mlp_trains_on_regression_task(self):
        rng = np.random.default_rng(5)
        net = MultiHeadMLP(3, (16,), (1,), rng=rng)
        opt = Adam(net.parameters(), lr=1e-2)
        X = rng.normal(size=(64, 3))
        y = (X[:, :1] * 2.0 - X[:, 1:2]) * 0.5

        def mse():
            out, _ = net.forward(X)
            return float(np.mean((out[0] - y) ** 2))

        initial = mse()
        for _ in range(300):
            out, cache = net.forward(X)
            grad = 2 * (out[0] - y) / len(X)
            opt.step(net.backward(cache, [grad]))
        assert mse() < 0.2 * initial
