"""Unit tests for the Sliding-Window UCB bandit."""

import numpy as np
import pytest

from repro.core.bandit import SlidingWindowUCB


class TestBasics:
    def test_unplayed_arms_have_infinite_score(self):
        mab = SlidingWindowUCB(3)
        assert np.all(np.isinf(mab.ucb_scores()))

    def test_every_arm_explored_first(self):
        mab = SlidingWindowUCB(4, rng=np.random.default_rng(0))
        seen = set()
        for _ in range(4):
            arm = mab.select()
            seen.add(arm)
            mab.update(arm, 0.5)
        assert seen == {0, 1, 2, 3}

    def test_counts_and_values(self):
        mab = SlidingWindowUCB(2, window=10)
        mab.update(0, 1.0)
        mab.update(0, 0.0)
        mab.update(1, 0.5)
        assert mab.counts().tolist() == [2, 1]
        assert mab.values()[0] == pytest.approx(0.5)
        assert mab.values()[1] == pytest.approx(0.5)

    def test_total_plays_never_forgets(self):
        mab = SlidingWindowUCB(2, window=2)
        for _ in range(5):
            mab.update(0, 1.0)
        assert mab.total_plays()[0] == 5
        assert mab.counts()[0] == 2  # the window forgot the older plays

    def test_update_out_of_range_rejected(self):
        mab = SlidingWindowUCB(2)
        with pytest.raises(IndexError):
            mab.update(5, 1.0)

    def test_nonfinite_reward_treated_as_zero(self):
        mab = SlidingWindowUCB(1)
        mab.update(0, float("nan"))
        assert mab.values()[0] == 0.0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindowUCB(0)
        with pytest.raises(ValueError):
            SlidingWindowUCB(2, window=0)
        with pytest.raises(ValueError):
            SlidingWindowUCB(2, exploration=-1.0)


class TestLearningBehaviour:
    def test_converges_to_best_arm_in_stationary_setting(self):
        rng = np.random.default_rng(0)
        means = [0.2, 0.8, 0.5]
        mab = SlidingWindowUCB(3, exploration=0.25, window=256, rng=rng)
        plays = np.zeros(3, dtype=int)
        for _ in range(300):
            arm = mab.select()
            reward = float(np.clip(rng.normal(means[arm], 0.05), 0, 1))
            mab.update(arm, reward)
            plays[arm] += 1
        assert plays[1] > plays[0] and plays[1] > plays[2]
        assert plays[1] > 150

    def test_adapts_to_nonstationary_rewards(self):
        """After the best arm flips, the sliding window lets the bandit switch."""
        rng = np.random.default_rng(1)
        mab = SlidingWindowUCB(2, exploration=0.25, window=64, rng=rng)
        for _ in range(200):
            arm = mab.select()
            reward = 0.9 if arm == 0 else 0.1
            mab.update(arm, reward)
        late_plays = np.zeros(2, dtype=int)
        for _ in range(300):
            arm = mab.select()
            reward = 0.1 if arm == 0 else 0.9  # the reward distribution flipped
            mab.update(arm, reward)
            late_plays[arm] += 1
        assert late_plays[1] > late_plays[0]

    def test_exploration_constant_zero_is_greedy(self):
        mab = SlidingWindowUCB(2, exploration=0.0, window=16, rng=np.random.default_rng(0))
        mab.update(0, 1.0)
        mab.update(1, 0.2)
        assert all(mab.select() == 0 for _ in range(10))

    def test_exploration_bonus_favours_rarely_played_arm(self):
        mab = SlidingWindowUCB(2, exploration=5.0, window=64, rng=np.random.default_rng(0))
        for _ in range(20):
            mab.update(0, 0.6)
        mab.update(1, 0.5)
        # With a huge exploration constant the rarely-played arm wins.
        assert mab.select() == 1

    def test_play_helper(self):
        mab = SlidingWindowUCB(2, rng=np.random.default_rng(0))
        arm, reward = mab.play(lambda a: 0.25)
        assert reward == 0.25
        assert mab.t == 1
        assert mab.total_plays()[arm] == 1


class TestSelectAmong:
    """`select(among=...)` restricts the choice to live arms."""

    def test_among_restricts_selection(self):
        mab = SlidingWindowUCB(3, exploration=0.0, window=16, rng=np.random.default_rng(0))
        for arm, reward in ((0, 1.0), (1, 0.5), (2, 0.4)):
            mab.update(arm, reward)
        assert mab.select() == 0
        assert mab.select(among=[1, 2]) == 1
        assert mab.select(among=[2]) == 2

    def test_among_prefers_unplayed_candidate(self):
        mab = SlidingWindowUCB(3, rng=np.random.default_rng(0))
        mab.update(0, 1.0)
        mab.update(1, 1.0)
        # Arm 2 is unplayed (+inf score) and must win inside the subset —
        # and masked-out arms must never be tie-broken in.
        assert mab.select(among=[1, 2]) == 2

    def test_among_validates_arms(self):
        mab = SlidingWindowUCB(2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            mab.select(among=[])
        with pytest.raises(IndexError):
            mab.select(among=[5])
