"""Unit tests for the parameter-search episode loop (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.actor_critic import PPOAgent
from repro.core.adaptive_stopping import AdaptiveStopper, FixedLengthStopper
from repro.core.parameter_search import ParameterSearcher
from repro.costmodel.model import ScheduleCostModel
from repro.hardware.measurer import Measurer
from repro.tensor.actions import ActionSpace
from repro.tensor.features import FEATURE_SIZE
from repro.tensor.sampler import sample_initial_schedules
from repro.tensor.sketch import generate_sketches
from repro.tensor.workloads import gemm


@pytest.fixture
def big_sketch():
    return generate_sketches(gemm(256, 256, 256))[0]


def _make_searcher(sketch, cpu, tiny_config, adaptive=True, seed=0):
    agent = PPOAgent(FEATURE_SIZE, ActionSpace(sketch).head_sizes, tiny_config, seed=seed)
    measurer = Measurer(cpu, seed=seed)
    cost_model = ScheduleCostModel(min_samples=8, retrain_interval=8, seed=seed)
    stopper = (
        AdaptiveStopper(tiny_config.window_size, tiny_config.elimination_ratio, tiny_config.min_tracks)
        if adaptive
        else FixedLengthStopper(tiny_config.episode_length)
    )
    searcher = ParameterSearcher(
        sketch=sketch,
        agent=agent,
        cost_model=cost_model,
        measurer=measurer,
        config=tiny_config,
        stopper=stopper,
        rng=np.random.default_rng(seed),
    )
    return searcher, measurer, cost_model


class TestEpisode:
    def test_episode_measures_top_k(self, big_sketch, cpu, tiny_config):
        searcher, measurer, _ = _make_searcher(big_sketch, cpu, tiny_config)
        episode = searcher.run_episode()
        assert 0 < episode.num_measured <= tiny_config.measures_per_round
        assert measurer.total_trials == episode.num_measured
        assert np.isfinite(episode.best_latency)
        assert episode.best_throughput > 0

    def test_max_measures_respected(self, big_sketch, cpu, tiny_config):
        searcher, measurer, _ = _make_searcher(big_sketch, cpu, tiny_config)
        episode = searcher.run_episode(max_measures=2)
        assert episode.num_measured <= 2

    def test_cost_model_learns_from_episode(self, big_sketch, cpu, tiny_config):
        searcher, _, cost_model = _make_searcher(big_sketch, cpu, tiny_config)
        searcher.run_episode()
        searcher.run_episode()
        searcher.run_episode()
        assert cost_model.num_samples(big_sketch.dag.name) > 0

    def test_adaptive_episode_prunes_tracks(self, big_sketch, cpu, tiny_config):
        searcher, _, _ = _make_searcher(big_sketch, cpu, tiny_config, adaptive=True)
        episode = searcher.run_episode()
        lengths = episode.track_lengths
        # With elimination, tracks end up with different lengths.
        assert len(set(lengths)) > 1
        assert max(lengths) > min(lengths)

    def test_fixed_length_episode_uniform_tracks(self, big_sketch, cpu, tiny_config):
        searcher, _, _ = _make_searcher(big_sketch, cpu, tiny_config, adaptive=False)
        episode = searcher.run_episode()
        assert episode.num_steps == tiny_config.episode_length
        assert len(set(episode.track_lengths)) == 1

    def test_critical_positions_in_unit_interval(self, big_sketch, cpu, tiny_config):
        searcher, _, _ = _make_searcher(big_sketch, cpu, tiny_config)
        episode = searcher.run_episode()
        assert len(episode.critical_positions) == tiny_config.num_tracks
        assert all(0.0 <= p <= 1.0 for p in episode.critical_positions)

    def test_visited_count_grows_with_steps(self, big_sketch, cpu, tiny_config):
        searcher, _, _ = _make_searcher(big_sketch, cpu, tiny_config)
        episode = searcher.run_episode()
        assert episode.num_visited >= tiny_config.num_tracks
        assert episode.num_steps > 0

    def test_warm_start_schedules_are_reused(self, big_sketch, cpu, tiny_config, rng):
        searcher, _, _ = _make_searcher(big_sketch, cpu, tiny_config)
        warm = sample_initial_schedules(big_sketch, 2, rng)
        episode = searcher.run_episode(warm_start=warm)
        assert episode.num_measured > 0

    def test_rl_stats_populated_after_training(self, big_sketch, cpu, tiny_config):
        searcher, _, _ = _make_searcher(big_sketch, cpu, tiny_config)
        episode = searcher.run_episode()
        assert set(episode.rl_stats) >= {"actor_loss", "critic_loss", "entropy"}

    def test_deterministic_given_seed(self, big_sketch, cpu, tiny_config):
        a = _make_searcher(big_sketch, cpu, tiny_config, seed=5)[0].run_episode()
        b = _make_searcher(big_sketch, cpu, tiny_config, seed=5)[0].run_episode()
        assert a.best_latency == pytest.approx(b.best_latency)
        assert a.num_visited == b.num_visited
