"""Unit tests for the adaptive-stopping module."""

import pytest

from repro.core.adaptive_stopping import AdaptiveStopper, FixedLengthStopper


class TestAdaptiveStopper:
    def test_elimination_steps_are_window_multiples(self):
        stopper = AdaptiveStopper(window_size=5, elimination_ratio=0.5, min_tracks=2)
        assert not stopper.is_elimination_step(0)
        assert not stopper.is_elimination_step(4)
        assert stopper.is_elimination_step(5)
        assert stopper.is_elimination_step(10)

    def test_should_continue_threshold(self):
        stopper = AdaptiveStopper(window_size=5, elimination_ratio=0.5, min_tracks=4)
        assert stopper.should_continue(step=7, num_live=4)
        assert not stopper.should_continue(step=7, num_live=3)

    def test_survivors_drop_lowest_advantages(self):
        stopper = AdaptiveStopper(window_size=5, elimination_ratio=0.5, min_tracks=1)
        advantages = [0.9, -1.0, 0.5, -0.5]
        survivors = stopper.select_survivors(advantages)
        assert survivors == [0, 2]

    def test_elimination_count_uses_floor(self):
        stopper = AdaptiveStopper(window_size=5, elimination_ratio=0.5, min_tracks=1)
        survivors = stopper.select_survivors([3.0, 2.0, 1.0])  # floor(0.5*3)=1 eliminated
        assert survivors == [0, 1]

    def test_small_population_not_eliminated_when_floor_zero(self):
        stopper = AdaptiveStopper(window_size=5, elimination_ratio=0.4, min_tracks=1)
        assert stopper.select_survivors([1.0, 2.0]) == [0, 1]

    def test_empty_advantages(self):
        stopper = AdaptiveStopper()
        assert stopper.select_survivors([]) == []

    def test_expected_total_steps_shrinks_geometrically(self):
        stopper = AdaptiveStopper(window_size=10, elimination_ratio=0.5, min_tracks=2)
        # 8 tracks: 8*10 + 4*10 + 2*10 = 140
        assert stopper.expected_total_steps(8) == 140

    def test_paper_matching_example(self):
        """The Fig. 4 example: lambda = L/2 and rho = 0.5 matches the fixed-length budget."""
        fixed = FixedLengthStopper(episode_length=4)
        adaptive = AdaptiveStopper(window_size=2, elimination_ratio=0.5, min_tracks=2)
        # Fixed: 6 tracks x 4 steps = 24 visits.
        # Adaptive: 6 tracks x 2 + 3 x 2 + 2 x 2 = 22 visits before dropping below
        # the minimum — a comparable number of candidates, as the paper argues.
        assert fixed.expected_total_steps(6) == 24
        assert adaptive.expected_total_steps(6) == 22

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveStopper(window_size=0)
        with pytest.raises(ValueError):
            AdaptiveStopper(elimination_ratio=1.0)
        with pytest.raises(ValueError):
            AdaptiveStopper(min_tracks=0)


class TestFixedLengthStopper:
    def test_runs_exactly_episode_length_steps(self):
        stopper = FixedLengthStopper(episode_length=6)
        assert stopper.should_continue(5, num_live=10)
        assert not stopper.should_continue(6, num_live=10)

    def test_never_eliminates(self):
        stopper = FixedLengthStopper(episode_length=6)
        assert not stopper.is_elimination_step(6)
        assert stopper.select_survivors([1.0, -5.0, 0.0]) == [0, 1, 2]

    def test_expected_total_steps(self):
        assert FixedLengthStopper(episode_length=5).expected_total_steps(7) == 35

    def test_requires_live_tracks(self):
        assert not FixedLengthStopper(episode_length=5).should_continue(1, num_live=0)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            FixedLengthStopper(episode_length=0)
