"""Unit tests for the replay buffer."""

import numpy as np
import pytest

from repro.core.rollout import ReplayBuffer


def _batch(n, state_size=6, num_heads=4, offset=0.0):
    states = np.full((n, state_size), offset)
    actions = np.zeros((n, num_heads), dtype=np.int64)
    ones = np.ones(n)
    return states, actions, ones * 0.1, ones * 0.2, ones * 0.3, ones * 0.4


class TestReplayBuffer:
    def test_add_and_len(self):
        buf = ReplayBuffer(capacity=16, state_size=6, num_heads=4)
        buf.add(*_batch(5))
        assert len(buf) == 5

    def test_capacity_wraps_fifo(self):
        buf = ReplayBuffer(capacity=8, state_size=6, num_heads=4)
        buf.add(*_batch(6, offset=1.0))
        buf.add(*_batch(6, offset=2.0))
        assert len(buf) == 8
        sample = buf.sample(8)
        # The oldest 4 entries (offset 1.0) must have been overwritten for 4 slots.
        assert np.sum(sample["states"][:, 0] == 2.0) == 6

    def test_sample_shapes(self):
        buf = ReplayBuffer(capacity=32, state_size=6, num_heads=4)
        buf.add(*_batch(10))
        sample = buf.sample(4)
        assert sample["states"].shape == (4, 6)
        assert sample["actions"].shape == (4, 4)
        assert sample["advantages"].shape == (4,)

    def test_sample_larger_than_size_is_clamped(self):
        buf = ReplayBuffer(capacity=32, state_size=6, num_heads=4)
        buf.add(*_batch(3))
        assert sample_size(buf.sample(10)) == 3

    def test_sample_empty_raises(self):
        buf = ReplayBuffer(capacity=4, state_size=2, num_heads=1)
        with pytest.raises(RuntimeError):
            buf.sample(1)

    def test_mismatched_batch_rejected(self):
        buf = ReplayBuffer(capacity=4, state_size=6, num_heads=4)
        states, actions, logp, rewards, td, adv = _batch(3)
        with pytest.raises(ValueError):
            buf.add(states, actions, logp[:-1], rewards, td, adv)

    def test_clear(self):
        buf = ReplayBuffer(capacity=4, state_size=6, num_heads=4)
        buf.add(*_batch(3))
        buf.clear()
        assert len(buf) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0, state_size=2, num_heads=1)


def sample_size(sample):
    return sample["states"].shape[0]
