"""Unit tests for the PPO agent."""

import numpy as np
import pytest

from repro.core.actor_critic import PPOAgent


@pytest.fixture
def agent(tiny_config):
    return PPOAgent(feature_size=8, head_sizes=(10, 3, 3, 3), config=tiny_config, seed=0)


def _states(n, rng, size=8):
    return rng.normal(size=(n, size))


class TestActing:
    def test_act_shapes(self, agent, rng):
        batch = agent.act(_states(6, rng))
        assert batch.actions.shape == (6, 4)
        assert batch.log_probs.shape == (6,)
        assert batch.values.shape == (6,)

    def test_actions_within_head_bounds(self, agent, rng):
        batch = agent.act(_states(64, rng))
        for head, size in enumerate(agent.head_sizes):
            assert batch.actions[:, head].min() >= 0
            assert batch.actions[:, head].max() < size

    def test_log_probs_nonpositive(self, agent, rng):
        batch = agent.act(_states(16, rng))
        assert np.all(batch.log_probs <= 0)

    def test_greedy_act_is_deterministic(self, agent, rng):
        states = _states(5, rng)
        a = agent.act(states, greedy=True).actions
        b = agent.act(states, greedy=True).actions
        assert np.array_equal(a, b)

    def test_stochastic_act_explores(self, agent, rng):
        states = np.zeros((200, 8))
        actions = agent.act(states).actions
        # A fresh (near-uniform) policy should not always pick the same tiling action.
        assert len(np.unique(actions[:, 0])) > 1

    def test_policy_distributions_normalised(self, agent, rng):
        dists = agent.policy_distributions(_states(4, rng))
        assert len(dists) == 4
        for dist in dists:
            assert np.allclose(dist.sum(axis=1), 1.0)

    def test_value_shape(self, agent, rng):
        assert agent.value(_states(9, rng)).shape == (9,)


class TestAdvantage:
    def test_td_target_formula(self, agent):
        rewards = np.array([1.0, 0.0])
        values = np.array([0.5, 0.5])
        next_values = np.array([1.0, 2.0])
        td, adv = agent.compute_advantage(rewards, values, next_values)
        gamma = agent.config.discount
        assert td == pytest.approx(rewards + gamma * next_values)
        assert adv == pytest.approx(td - values)


class TestLearning:
    def test_update_on_empty_buffer_is_safe(self, agent):
        stats = agent.update()
        assert stats["actor_loss"] == 0.0

    def test_update_returns_finite_losses(self, agent, rng):
        states = _states(32, rng)
        batch = agent.act(states)
        rewards = rng.normal(size=32)
        next_values = agent.value(states)
        td, adv = agent.compute_advantage(rewards, batch.values, next_values)
        agent.store(states, batch.actions, batch.log_probs, rewards, td, adv)
        stats = agent.update()
        assert np.isfinite(stats["actor_loss"])
        assert np.isfinite(stats["critic_loss"])
        assert stats["entropy"] > 0

    def test_policy_shifts_toward_rewarded_action(self, tiny_config):
        """Repeatedly rewarding one action index increases its probability."""
        config = tiny_config.replace(entropy_weight=0.0, actor_lr=3e-3, ppo_epochs=8)
        agent = PPOAgent(feature_size=4, head_sizes=(6, 3, 3, 3), config=config, seed=1)
        rng = np.random.default_rng(0)
        states = np.zeros((64, 4))
        target_action = 2

        initial_prob = agent.policy_distributions(states[:1])[0][0, target_action]
        for _ in range(30):
            batch = agent.act(states)
            rewards = (batch.actions[:, 0] == target_action).astype(float)
            next_values = agent.value(states)
            td, adv = agent.compute_advantage(rewards, batch.values, next_values)
            agent.store(states, batch.actions, batch.log_probs, rewards, td, adv)
            agent.update()
        final_prob = agent.policy_distributions(states[:1])[0][0, target_action]
        assert final_prob > initial_prob + 0.1

    def test_critic_learns_constant_target(self, tiny_config):
        config = tiny_config.replace(critic_lr=5e-3, ppo_epochs=8)
        agent = PPOAgent(feature_size=4, head_sizes=(4, 3, 3, 3), config=config, seed=2)
        rng = np.random.default_rng(1)
        states = rng.normal(size=(64, 4))
        for _ in range(40):
            batch = agent.act(states)
            rewards = np.ones(64)
            td_targets = np.full(64, 5.0)
            advantages = td_targets - batch.values
            agent.store(states, batch.actions, batch.log_probs, rewards, td_targets, advantages)
            agent.update()
        values = agent.value(states)
        assert np.mean(np.abs(values - 5.0)) < 1.5

    def test_parameters_change_after_update(self, agent, rng):
        before = [p.copy() for p in agent.actor.parameters()]
        states = _states(32, rng)
        batch = agent.act(states)
        rewards = rng.normal(size=32)
        td, adv = agent.compute_advantage(rewards, batch.values, agent.value(states))
        agent.store(states, batch.actions, batch.log_probs, rewards, td, adv)
        agent.update()
        after = agent.actor.parameters()
        assert any(not np.allclose(b, a) for b, a in zip(before, after))
