"""Unit tests for the subgraph-selection reward (Eq. 3 / 4)."""

import numpy as np
import pytest

from repro.core.subgraph_reward import SubgraphState, normalized_rewards, subgraph_reward


def _state(name, weight=1.0, flops=1e9, group="gemm", latencies=()):
    state = SubgraphState(name=name, weight=weight, flops=flops, similarity_group=group)
    for latency in latencies:
        state.record(latency)
    return state


class TestSubgraphState:
    def test_record_keeps_best_so_far(self):
        state = _state("a", latencies=[2.0, 3.0, 1.0])
        assert state.latencies == [2.0, 2.0, 1.0]
        assert state.best_latency == 1.0
        assert state.rounds == 3

    def test_empty_state(self):
        state = _state("a")
        assert state.best_latency == float("inf")
        assert state.rounds == 0


class TestSubgraphReward:
    def test_untuned_subgraph_gets_infinite_reward(self):
        states = [_state("a"), _state("b", latencies=[1.0])]
        assert subgraph_reward(states[0], states) == float("inf")

    def test_recent_improvement_raises_reward(self):
        """With alpha = 1 the reward is purely the recent improvement rate."""
        improving = _state("a", latencies=[1.0, 0.6, 0.4])
        stagnant = _state("b", latencies=[1.0, 1.0, 1.0])
        states = [improving, stagnant]
        assert subgraph_reward(improving, states, alpha=1.0) > subgraph_reward(
            stagnant, states, alpha=1.0
        )

    def test_headroom_dominates_with_default_alpha(self):
        """With the paper's alpha = 0.2 the head-room term dominates: a slow,
        stagnant subgraph whose similar peer achieves much higher throughput
        still deserves tuning trials."""
        improving = _state("a", latencies=[1.0, 0.6, 0.4])
        stagnant = _state("b", latencies=[1.0, 1.0, 1.0])
        states = [improving, stagnant]
        assert subgraph_reward(stagnant, states) > subgraph_reward(improving, states)

    def test_weight_scales_reward(self):
        light = _state("a", weight=1, latencies=[1.0, 0.8])
        heavy = _state("b", weight=10, latencies=[1.0, 0.8])
        states = [light, heavy]
        assert subgraph_reward(heavy, states) > 5 * subgraph_reward(light, states)

    def test_similarity_headroom(self):
        """A subgraph far from the throughput of a similar subgraph gets head-room."""
        slow = _state("slow", flops=1e9, latencies=[1.0] * 8)      # 1 GFLOP/s
        fast = _state("fast", flops=1e9, latencies=[0.01] * 8)     # 100 GFLOP/s
        other_group = _state("other", flops=1e9, group="conv", latencies=[1.0] * 8)
        states = [slow, fast, other_group]
        with_similar = subgraph_reward(slow, states)
        without_similar = subgraph_reward(other_group, states)
        assert with_similar > without_similar

    def test_reward_decays_with_rounds(self):
        # Distinct similarity groups isolate the g_a / t_a decay bound.
        fresh = _state("a", group="ga", latencies=[1.0, 1.0])
        old = _state("b", group="gb", latencies=[1.0] * 40)
        states = [fresh, old]
        assert subgraph_reward(fresh, states) > subgraph_reward(old, states)

    def test_alpha_extremes(self):
        state = _state("a", latencies=[1.0, 0.5, 0.5])
        states = [state]
        history_only = subgraph_reward(state, states, alpha=1.0)
        headroom_only = subgraph_reward(state, states, alpha=0.0)
        assert history_only >= 0 and headroom_only >= 0


class TestFailedRoundRecovery:
    """Regressions for the inf/NaN poisoning of the Eq. 3 reward path.

    A measurement round whose every trial fails records ``inf`` latency;
    before the fix ``improvement_rate`` computed ``inf - inf = NaN`` and
    ``normalized_rewards`` mapped the NaN to 1.0, so a dead task looked like
    an untuned top-priority task forever.
    """

    def test_all_failed_rounds_give_zero_reward(self):
        dead = _state("dead", latencies=[float("inf")] * 3)
        healthy = _state("healthy", latencies=[1.0, 0.9])
        reward = subgraph_reward(dead, [dead, healthy])
        assert reward == 0.0
        assert np.isfinite(reward)

    def test_dead_task_is_not_top_priority(self):
        states = [
            _state("dead", latencies=[float("inf")] * 4),
            _state("untuned"),
            _state("healthy", latencies=[1.0, 0.8]),
        ]
        rewards = normalized_rewards(states)
        assert rewards[0] == 0.0       # dead: no NaN -> 1.0 masquerade
        assert rewards[1] == 1.0       # untuned stays maximal
        assert np.all(np.isfinite(rewards))

    def test_recovery_after_failed_round_is_finite(self):
        # First round failed, later rounds succeeded: the inf -> finite drop
        # must not produce an infinite improvement rate.
        recovered = _state("recovered", latencies=[float("inf"), 2.0, 1.5])
        reward = subgraph_reward(recovered, [recovered])
        assert np.isfinite(reward)
        assert reward > 0.0

    def test_failed_peer_does_not_break_similarity_term(self):
        # A similar peer whose rounds all failed has best_latency == inf
        # (zero throughput); it must be excluded, not divide by zero.
        alive = _state("alive", latencies=[1.0] * 4)
        dead_peer = _state("dead", latencies=[float("inf")] * 4)
        reward = subgraph_reward(alive, [alive, dead_peer])
        assert np.isfinite(reward)

    def test_zero_latency_peer_does_not_divide_by_zero(self):
        alive = _state("alive", latencies=[1.0] * 4)
        zero_peer = SubgraphState(name="zero", weight=1.0, flops=1e9,
                                  similarity_group="gemm")
        zero_peer.latencies.extend([0.0, 0.0])  # bypass record()'s min()
        reward = subgraph_reward(alive, [alive, zero_peer])
        assert np.isfinite(reward)


class TestEmptyGroupIsolation:
    """The empty similarity group must match nothing (Eq. 3 ``M(a)``)."""

    def test_empty_groups_do_not_transfer_throughput(self):
        # Two untagged subgraphs, one fast and one slow: before the fix they
        # shared the "" group and the slow one received a similarity-gap
        # head-room bonus from the fast one's throughput.
        slow = _state("slow", group="", latencies=[1.0] * 8)
        fast = _state("fast", group="", latencies=[0.01] * 8)
        isolated = _state("isolated", group="g-alone", latencies=[1.0] * 8)
        states = [slow, fast, isolated]
        # Identical latency history and (lack of) similar peers => identical
        # reward: the slow empty-group state gets no bonus from `fast`.
        assert subgraph_reward(slow, states) == pytest.approx(
            subgraph_reward(isolated, states)
        )

    def test_nonempty_groups_still_transfer(self):
        slow = _state("slow", group="gemm", latencies=[1.0] * 8)
        fast = _state("fast", group="gemm", latencies=[0.01] * 8)
        lone = _state("lone", group="other", latencies=[1.0] * 8)
        states = [slow, fast, lone]
        assert subgraph_reward(slow, states) > subgraph_reward(lone, states)


class TestNormalizedRewards:
    def test_range_and_infinite_mapping(self):
        states = [
            _state("untuned"),
            _state("tuned", latencies=[1.0, 0.9]),
            _state("stale", latencies=[1.0] * 20),
        ]
        rewards = normalized_rewards(states)
        assert rewards.shape == (3,)
        assert np.all((rewards >= 0.0) & (rewards <= 1.0))
        assert rewards[0] == 1.0  # untuned -> maximum priority

    def test_all_untuned(self):
        states = [_state("a"), _state("b")]
        assert np.allclose(normalized_rewards(states), 1.0)

    def test_best_candidate_gets_highest_reward(self):
        states = [
            _state("big_improver", weight=10, latencies=[1.0, 0.5]),
            _state("small_improver", weight=1, latencies=[1.0, 0.95]),
        ]
        rewards = normalized_rewards(states)
        assert rewards[0] > rewards[1]
