"""Unit tests for the subgraph-selection reward (Eq. 3 / 4)."""

import numpy as np
import pytest

from repro.core.subgraph_reward import SubgraphState, normalized_rewards, subgraph_reward


def _state(name, weight=1.0, flops=1e9, group="gemm", latencies=()):
    state = SubgraphState(name=name, weight=weight, flops=flops, similarity_group=group)
    for latency in latencies:
        state.record(latency)
    return state


class TestSubgraphState:
    def test_record_keeps_best_so_far(self):
        state = _state("a", latencies=[2.0, 3.0, 1.0])
        assert state.latencies == [2.0, 2.0, 1.0]
        assert state.best_latency == 1.0
        assert state.rounds == 3

    def test_empty_state(self):
        state = _state("a")
        assert state.best_latency == float("inf")
        assert state.rounds == 0


class TestSubgraphReward:
    def test_untuned_subgraph_gets_infinite_reward(self):
        states = [_state("a"), _state("b", latencies=[1.0])]
        assert subgraph_reward(states[0], states) == float("inf")

    def test_recent_improvement_raises_reward(self):
        """With alpha = 1 the reward is purely the recent improvement rate."""
        improving = _state("a", latencies=[1.0, 0.6, 0.4])
        stagnant = _state("b", latencies=[1.0, 1.0, 1.0])
        states = [improving, stagnant]
        assert subgraph_reward(improving, states, alpha=1.0) > subgraph_reward(
            stagnant, states, alpha=1.0
        )

    def test_headroom_dominates_with_default_alpha(self):
        """With the paper's alpha = 0.2 the head-room term dominates: a slow,
        stagnant subgraph whose similar peer achieves much higher throughput
        still deserves tuning trials."""
        improving = _state("a", latencies=[1.0, 0.6, 0.4])
        stagnant = _state("b", latencies=[1.0, 1.0, 1.0])
        states = [improving, stagnant]
        assert subgraph_reward(stagnant, states) > subgraph_reward(improving, states)

    def test_weight_scales_reward(self):
        light = _state("a", weight=1, latencies=[1.0, 0.8])
        heavy = _state("b", weight=10, latencies=[1.0, 0.8])
        states = [light, heavy]
        assert subgraph_reward(heavy, states) > 5 * subgraph_reward(light, states)

    def test_similarity_headroom(self):
        """A subgraph far from the throughput of a similar subgraph gets head-room."""
        slow = _state("slow", flops=1e9, latencies=[1.0] * 8)      # 1 GFLOP/s
        fast = _state("fast", flops=1e9, latencies=[0.01] * 8)     # 100 GFLOP/s
        other_group = _state("other", flops=1e9, group="conv", latencies=[1.0] * 8)
        states = [slow, fast, other_group]
        with_similar = subgraph_reward(slow, states)
        without_similar = subgraph_reward(other_group, states)
        assert with_similar > without_similar

    def test_reward_decays_with_rounds(self):
        # Distinct similarity groups isolate the g_a / t_a decay bound.
        fresh = _state("a", group="ga", latencies=[1.0, 1.0])
        old = _state("b", group="gb", latencies=[1.0] * 40)
        states = [fresh, old]
        assert subgraph_reward(fresh, states) > subgraph_reward(old, states)

    def test_alpha_extremes(self):
        state = _state("a", latencies=[1.0, 0.5, 0.5])
        states = [state]
        history_only = subgraph_reward(state, states, alpha=1.0)
        headroom_only = subgraph_reward(state, states, alpha=0.0)
        assert history_only >= 0 and headroom_only >= 0


class TestNormalizedRewards:
    def test_range_and_infinite_mapping(self):
        states = [
            _state("untuned"),
            _state("tuned", latencies=[1.0, 0.9]),
            _state("stale", latencies=[1.0] * 20),
        ]
        rewards = normalized_rewards(states)
        assert rewards.shape == (3,)
        assert np.all((rewards >= 0.0) & (rewards <= 1.0))
        assert rewards[0] == 1.0  # untuned -> maximum priority

    def test_all_untuned(self):
        states = [_state("a"), _state("b")]
        assert np.allclose(normalized_rewards(states), 1.0)

    def test_best_candidate_gets_highest_reward(self):
        states = [
            _state("big_improver", weight=10, latencies=[1.0, 0.5]),
            _state("small_improver", weight=1, latencies=[1.0, 0.95]),
        ]
        rewards = normalized_rewards(states)
        assert rewards[0] > rewards[1]
