"""Unit tests for the tuning-result containers."""

import pytest

from repro.core.tuner import NetworkTuningResult, TuningResult


def _result(history, scheduler="x", trials=None):
    best = history[-1][1] if history else float("inf")
    return TuningResult(
        workload="w",
        scheduler=scheduler,
        best_latency=best,
        best_throughput=1.0 / best if best not in (0, float("inf")) else 0.0,
        best_schedule=None,
        trials_used=trials if trials is not None else (history[-1][0] if history else 0),
        search_steps=100,
        history=list(history),
    )


class TestTuningResult:
    def test_trials_to_reach_finds_first_crossing(self):
        result = _result([(1, 10.0), (5, 4.0), (9, 2.0)])
        assert result.trials_to_reach(5.0) == 5
        assert result.trials_to_reach(10.0) == 1
        assert result.trials_to_reach(2.0) == 9

    def test_trials_to_reach_unreachable(self):
        result = _result([(1, 10.0), (5, 4.0)])
        assert result.trials_to_reach(1.0) is None

    def test_best_latency_at(self):
        result = _result([(1, 10.0), (5, 4.0), (9, 2.0)])
        assert result.best_latency_at(0) == float("inf")
        assert result.best_latency_at(5) == 4.0
        assert result.best_latency_at(100) == 2.0


class TestNetworkTuningResult:
    def _network_result(self):
        task_results = {
            "a": _result([(1, 2.0)], trials=10),
            "b": _result([(1, 1.0)], trials=20),
        }
        return NetworkTuningResult(
            network="net",
            scheduler="x",
            task_results=task_results,
            task_weights={"a": 2.0, "b": 1.0},
            latency_history=[(10, 8.0), (30, 5.0)],
            allocations={"a": 10, "b": 20},
        )

    def test_best_latency_and_trials(self):
        result = self._network_result()
        assert result.best_latency == 5.0
        assert result.trials_used == 30

    def test_trials_to_reach(self):
        result = self._network_result()
        assert result.trials_to_reach(8.0) == 10
        assert result.trials_to_reach(5.0) == 30
        assert result.trials_to_reach(1.0) is None

    def test_task_contributions_sum_to_one(self):
        result = self._network_result()
        contributions = result.task_contributions()
        assert sum(contributions.values()) == pytest.approx(1.0)
        # a contributes 2*2=4, b contributes 1*1=1.
        assert contributions["a"] == pytest.approx(0.8)

    def test_empty_history(self):
        result = NetworkTuningResult(
            network="net", scheduler="x", task_results={}, task_weights={}
        )
        assert result.best_latency == float("inf")
        assert result.trials_used == 0
