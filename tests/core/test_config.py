"""Unit tests for the HARL configuration object."""

import pytest

from repro.core.config import HARLConfig


class TestDefaults:
    def test_paper_defaults_match_table5(self):
        cfg = HARLConfig.paper()
        assert cfg.window_size == 20          # lambda
        assert cfg.elimination_ratio == 0.5    # rho
        assert cfg.min_tracks == 64            # p-hat
        assert cfg.actor_lr == pytest.approx(3e-4)
        assert cfg.critic_lr == pytest.approx(1e-3)
        assert cfg.train_interval == 2         # T_rl
        assert cfg.discount == pytest.approx(0.9)
        assert cfg.mse_weight == pytest.approx(0.5)
        assert cfg.entropy_weight == pytest.approx(0.01)
        assert cfg.ucb_constant == pytest.approx(0.25)
        assert cfg.ucb_window == 256
        assert cfg.alpha == pytest.approx(0.2)
        assert cfg.beta == pytest.approx(2.0)
        assert cfg.min_repeat_seconds == pytest.approx(1.0)

    def test_replace_creates_modified_copy(self):
        cfg = HARLConfig()
        other = cfg.replace(window_size=10)
        assert other.window_size == 10
        assert cfg.window_size == 20
        assert other.discount == cfg.discount


class TestScaled:
    def test_scaled_shrinks_episode_width(self):
        cfg = HARLConfig.scaled(0.125)
        base = HARLConfig()
        assert cfg.num_tracks < base.num_tracks
        assert cfg.measures_per_round < base.measures_per_round
        assert cfg.min_tracks <= cfg.num_tracks

    def test_scaled_keeps_rl_hyperparameters(self):
        cfg = HARLConfig.scaled(0.1)
        base = HARLConfig()
        assert cfg.actor_lr == base.actor_lr
        assert cfg.discount == base.discount
        assert cfg.entropy_weight == base.entropy_weight

    def test_scaled_factor_one_keeps_paper_scale(self):
        cfg = HARLConfig.scaled(1.0)
        assert cfg.num_tracks == HARLConfig().num_tracks

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            HARLConfig.scaled(0.0)
        with pytest.raises(ValueError):
            HARLConfig.scaled(2.0)


class TestValidation:
    def test_rejects_bad_elimination_ratio(self):
        with pytest.raises(ValueError):
            HARLConfig(elimination_ratio=0.0)
        with pytest.raises(ValueError):
            HARLConfig(elimination_ratio=1.0)

    def test_rejects_tracks_below_min(self):
        with pytest.raises(ValueError):
            HARLConfig(num_tracks=8, min_tracks=16)

    def test_rejects_bad_discount(self):
        with pytest.raises(ValueError):
            HARLConfig(discount=1.5)

    def test_rejects_bad_clip(self):
        with pytest.raises(ValueError):
            HARLConfig(clip_epsilon=0.0)

    def test_rejects_bad_measures(self):
        with pytest.raises(ValueError):
            HARLConfig(measures_per_round=0)
