"""Unit / integration tests for the HARL scheduler."""

import numpy as np
import pytest

from repro.core.scheduler import HARLScheduler
from repro.networks.graph import NetworkGraph, Subgraph
from repro.tensor.workloads import gemm, softmax


@pytest.fixture
def tiny_network():
    return NetworkGraph(
        name="tiny-net",
        subgraphs=[
            Subgraph("mm_big", gemm(128, 128, 128, name="tiny_mm_big"), weight=4, similarity_group="gemm"),
            Subgraph("mm_small", gemm(64, 64, 64, name="tiny_mm_small"), weight=2, similarity_group="gemm"),
            Subgraph("softmax", softmax(128, 64, name="tiny_softmax"), weight=2, similarity_group="softmax"),
        ],
    )


class TestOperatorTuning:
    def test_tune_respects_trial_budget(self, tiny_config, gemm_dag):
        scheduler = HARLScheduler(config=tiny_config, seed=0)
        result = scheduler.tune(gemm_dag, n_trials=12)
        assert result.trials_used >= 12
        assert result.trials_used <= 12 + tiny_config.measures_per_round
        assert np.isfinite(result.best_latency)
        assert result.best_schedule is not None

    def test_history_is_nonincreasing(self, tiny_config, gemm_dag):
        scheduler = HARLScheduler(config=tiny_config, seed=0)
        result = scheduler.tune(gemm_dag, n_trials=16)
        bests = [latency for _t, latency in result.history]
        assert all(b <= a for a, b in zip(bests, bests[1:]))

    def test_more_trials_do_not_hurt(self, tiny_config, gemm_dag):
        few = HARLScheduler(config=tiny_config, seed=3).tune(gemm_dag, n_trials=8)
        many = HARLScheduler(config=tiny_config, seed=3).tune(gemm_dag, n_trials=40)
        assert many.best_latency <= few.best_latency * 1.001

    def test_extras_record_sketch_and_track_statistics(self, tiny_config, gemm_dag):
        scheduler = HARLScheduler(config=tiny_config, seed=0)
        result = scheduler.tune(gemm_dag, n_trials=12)
        assert result.extras["episodes"] >= 1
        assert len(result.extras["sketch_plays"]) == len(result.extras["sketch_keys"])
        assert sum(result.extras["sketch_plays"]) == result.extras["episodes"]
        assert len(result.extras["critical_positions"]) > 0

    def test_ablation_switch_changes_name(self, tiny_config):
        assert HARLScheduler(config=tiny_config).name == "harl"
        assert (
            HARLScheduler(config=tiny_config, adaptive_stopping=False).name == "hierarchical-rl"
        )

    def test_fixed_length_ablation_runs(self, tiny_config, gemm_dag):
        scheduler = HARLScheduler(config=tiny_config, seed=1, adaptive_stopping=False)
        result = scheduler.tune(gemm_dag, n_trials=8)
        lengths = set(result.extras["track_lengths"])
        assert len(lengths) == 1  # fixed-length tracks

    def test_rejects_nonpositive_trials(self, tiny_config, gemm_dag):
        with pytest.raises(ValueError):
            HARLScheduler(config=tiny_config).tune(gemm_dag, n_trials=0)

    def test_gpu_target_tuning(self, tiny_config, gemm_dag, gpu):
        scheduler = HARLScheduler(target=gpu, config=tiny_config, seed=0)
        result = scheduler.tune(gemm_dag, n_trials=8)
        assert np.isfinite(result.best_latency)
        assert result.best_schedule.unroll_depths == gpu.unroll_depths


class TestNetworkTuning:
    def test_all_tasks_eventually_tuned(self, tiny_config, tiny_network):
        scheduler = HARLScheduler(config=tiny_config, seed=0)
        result = scheduler.tune_network(tiny_network, n_trials=60)
        assert set(result.task_results) == {"mm_big", "mm_small", "softmax"}
        assert all(r.best_latency < float("inf") for r in result.task_results.values())
        assert np.isfinite(result.best_latency)

    def test_latency_history_nonincreasing_once_finite(self, tiny_config, tiny_network):
        scheduler = HARLScheduler(config=tiny_config, seed=0)
        result = scheduler.tune_network(tiny_network, n_trials=60)
        finite = [v for _t, v in result.latency_history if np.isfinite(v)]
        assert finite, "the estimated latency should become finite"
        assert all(b <= a * 1.0001 for a, b in zip(finite, finite[1:]))

    def test_allocations_sum_to_trials(self, tiny_config, tiny_network):
        scheduler = HARLScheduler(config=tiny_config, seed=0)
        result = scheduler.tune_network(tiny_network, n_trials=40)
        assert sum(result.allocations.values()) == result.trials_used

    def test_greedy_ablation_differs_from_mab(self, tiny_config, tiny_network):
        mab = HARLScheduler(config=tiny_config, seed=0, use_subgraph_mab=True)
        greedy = HARLScheduler(config=tiny_config, seed=0, use_subgraph_mab=False)
        res_mab = mab.tune_network(tiny_network, n_trials=40)
        res_greedy = greedy.tune_network(tiny_network, n_trials=40)
        assert res_mab.extras["use_subgraph_mab"] is True
        assert res_greedy.extras["use_subgraph_mab"] is False
        # Both produce a usable estimate.
        assert np.isfinite(res_mab.best_latency)
        assert np.isfinite(res_greedy.best_latency)

    def test_weighted_latency_uses_task_weights(self, tiny_config, tiny_network):
        scheduler = HARLScheduler(config=tiny_config, seed=0)
        result = scheduler.tune_network(tiny_network, n_trials=60)
        manual = sum(
            tiny_network.subgraph(name).weight * res.best_latency
            for name, res in result.task_results.items()
        )
        assert result.best_latency == pytest.approx(manual, rel=0.3)
