"""Positive/negative fixtures for the fault/obligation coverage checker."""

from pathlib import Path

from repro.analysis import Project
from repro.analysis.fault_coverage import FaultCoverageChecker

PLAN = (
    'FAULT_POINTS = {\n'
    '    "store.flush": "flush of the record store",\n'
    '    "service.advance": "one tuning round",\n'
    '}\n'
)

SCENARIOS = (
    'from repro.faults.plan import FaultPlan\n'
    'SCENARIOS = [\n'
    '    FaultPlan.single("store.flush"),\n'
    '    FaultPlan.single("service.advance"),\n'
    ']\n'
)

SERVICE = (
    'def advance(self):\n'
    '    poll_fault("service.advance", detail="round")\n'
)

STORE = (
    'def flush(self):\n'
    '    poll_fault("store.flush")\n'
)


def run(sources):
    project = Project.from_sources(sources)
    return FaultCoverageChecker(
        plan_suffix="faults/plan.py", scenarios_suffix="faults/scenarios.py"
    ).run(project)


def full_tree(**overrides):
    sources = {
        "repro/faults/plan.py": PLAN,
        "repro/faults/scenarios.py": SCENARIOS,
        "repro/serving/service.py": SERVICE,
        "repro/records.py": STORE,
    }
    sources.update(overrides)
    return sources


class TestFaultCoverage:
    def test_covered_tree_is_clean(self):
        assert run(full_tree()) == []

    def test_unknown_point_at_a_poll_site_is_flagged(self):
        findings = run(full_tree(**{
            "repro/records.py": 'def flush(self):\n    poll_fault("store.flish")\n',
        }))
        rules = sorted(f.rule for f in findings)
        # the typo'd site is unknown AND the real point is now unpolled
        assert rules == ["fault.unknown-point", "fault.unpolled-point"]

    def test_renamed_point_without_scenario_update_is_caught(self):
        # Acceptance criterion: rename a fault point in plan.py without
        # updating the obligations and CI must go red.
        renamed = PLAN.replace("service.advance", "service.advance2")
        findings = run(full_tree(**{"repro/faults/plan.py": renamed}))
        rules = sorted(f.rule for f in findings)
        assert "fault.unknown-point" in rules     # stale poll + scenario sites
        assert "fault.unpolled-point" in rules    # new name never polled
        assert "fault.uncovered-point" in rules   # new name in no scenario

    def test_point_missing_from_scenarios_is_flagged(self):
        thin = 'from repro.faults.plan import FaultPlan\nSCENARIOS = [FaultPlan.single("store.flush")]\n'
        findings = run(full_tree(**{"repro/faults/scenarios.py": thin}))
        assert [f.rule for f in findings] == ["fault.uncovered-point"]
        assert "service.advance" in findings[0].message

    def test_point_never_polled_is_flagged(self):
        findings = run(full_tree(**{"repro/records.py": "def flush(self):\n    pass\n"}))
        assert [f.rule for f in findings] == ["fault.unpolled-point"]

    def test_scenario_site_counts_as_coverage_not_polling(self):
        # FaultPlan.single in scenarios.py covers the point but must not
        # satisfy the "polled somewhere in production code" requirement.
        findings = run({
            "repro/faults/plan.py": 'FAULT_POINTS = {"store.flush": "x"}\n',
            "repro/faults/scenarios.py": 'SCENARIOS = [FaultPlan.single("store.flush")]\n',
        })
        assert [f.rule for f in findings] == ["fault.unpolled-point"]

    def test_poll_sites_without_a_table_are_flagged(self):
        findings = run({
            "repro/records.py": 'def flush(self):\n    poll_fault("store.flush")\n',
        })
        assert [f.rule for f in findings] == ["fault.no-table"]

    def test_real_tree_fault_surface_is_consistent(self):
        # The shipped plan/scenarios/poll sites must agree with each other.
        project = Project.load(Path(__file__).resolve().parents[2] / "src")
        assert FaultCoverageChecker().run(project) == []
