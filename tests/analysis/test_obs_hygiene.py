"""Positive/negative fixtures for the metrics/tracing hygiene checker."""

from repro.analysis import Project
from repro.analysis.obs_hygiene import ObsHygieneChecker


def run(source: str, path: str = "serving/server.py"):
    project = Project.from_sources({path: source})
    return ObsHygieneChecker().run(project)


class TestNames:
    def test_literal_dotted_name_is_clean(self):
        findings = run(
            "from repro.obs import counter\n"
            '_REQS = counter("serve.requests_total")\n'
        )
        assert findings == []

    def test_dynamic_name_is_flagged(self):
        findings = run(
            "from repro.obs import counter\n"
            "def track(tenant):\n"
            '    counter(f"serve.requests.{tenant}").inc()\n'
        )
        assert [f.rule for f in findings] == ["obs.dynamic-name"]

    def test_concatenated_name_is_flagged(self):
        findings = run(
            "from repro.obs import counter\n"
            'PREFIX = "serve."\n'
            "def track(kind):\n"
            "    counter(PREFIX + kind).inc()\n"
        )
        assert [f.rule for f in findings] == ["obs.dynamic-name"]

    def test_name_outside_the_scheme_is_flagged(self):
        findings = run(
            "from repro.obs import counter\n"
            '_REQS = counter("ServeRequests")\n'
        )
        assert [f.rule for f in findings] == ["obs.bad-name"]

    def test_single_segment_name_is_flagged(self):
        findings = run(
            "from repro.obs import gauge\n"
            '_DEPTH = gauge("depth")\n'
        )
        assert [f.rule for f in findings] == ["obs.bad-name"]

    def test_span_names_are_checked_too(self):
        findings = run(
            "from repro.obs import span\n"
            "def work(job_id):\n"
            '    with span(f"serve.job.{job_id}"):\n'
            "        pass\n"
        )
        assert [f.rule for f in findings] == ["obs.dynamic-name"]

    def test_obs_wrappers_themselves_are_exempt(self):
        findings = run(
            "def counter(name):\n"
            "    return _registry.counter(name)\n",
            path="obs/metrics.py",
        )
        assert findings == []


class TestHistograms:
    def test_seconds_suffix_is_required(self):
        findings = run(
            "from repro.obs import histogram\n"
            '_LAT = histogram("serve.latency_ms")\n'
        )
        assert [f.rule for f in findings] == ["obs.histogram-name"]

    def test_observing_a_ms_scaled_value_is_flagged(self):
        findings = run(
            "from repro.obs import histogram\n"
            '_LAT = histogram("serve.latency_seconds")\n'
            "def done(t0, t1):\n"
            "    _LAT.observe((t1 - t0) * 1000)\n"
        )
        assert [f.rule for f in findings] == ["obs.histogram-units"]

    def test_observing_seconds_is_clean(self):
        findings = run(
            "import time\n"
            "from repro.obs import histogram\n"
            '_LAT = histogram("serve.latency_seconds")\n'
            "def done(t0):\n"
            "    _LAT.observe(time.perf_counter() - t0)\n"
        )
        assert findings == []
