"""Baseline round-trip, validation, and CLI exit-code coverage."""

import json

import pytest

from repro.analysis import Project, analyze_project
from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError
from repro.analysis.findings import make_finding
from repro.analysis.lock_discipline import LockDisciplineChecker
from repro.analysis.report import SCHEMA as REPORT_SCHEMA
from repro.analysis.runner import main

UNLOCKED = (
    "class Store:\n"
    "    def add(self, x):\n"
    "        self._absorb_locked(x)\n"
)


def finding_for(source=UNLOCKED, path="store.py"):
    project = Project.from_sources({path: source})
    findings = LockDisciplineChecker(()).run(project)
    assert len(findings) == 1
    return findings[0]


class TestRoundTrip:
    def test_written_baseline_suppresses_the_same_finding(self, tmp_path):
        finding = finding_for()
        baseline = Baseline.from_findings([finding], justification="known debt")
        path = baseline.write(tmp_path / "baseline.json")

        loaded = Baseline.load(path)
        assert loaded.suppresses(finding)
        new, baselined = loaded.split([finding])
        assert new == [] and baselined == [finding]

    def test_matching_is_line_insensitive(self, tmp_path):
        finding = finding_for()
        baseline = Baseline.from_findings([finding], justification="known debt")
        path = baseline.write(tmp_path / "baseline.json")
        # shift the violation down two lines; the stable key is unchanged
        moved = finding_for(source="\n\n" + UNLOCKED)
        assert moved.line != finding.line
        assert Baseline.load(path).suppresses(moved)

    def test_different_method_is_not_suppressed(self, tmp_path):
        baseline = Baseline.from_findings([finding_for()], justification="known debt")
        other = finding_for(
            source="class Store:\n    def drop(self, x):\n        self._absorb_locked(x)\n"
        )
        assert not baseline.suppresses(other)

    def test_missing_file_loads_as_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.entries == []

    def test_stale_entries_are_reported_not_fatal(self):
        entry = BaselineEntry("lock.guarded-attr", "gone.py", "X.y@Z.w", "fixed since")
        report = analyze_project(
            Project.from_sources({"clean.py": "x = 1\n"}),
            checkers=[LockDisciplineChecker(())],
            baseline=Baseline([entry]),
        )
        assert report.ok
        assert report.stale == [entry]


class TestValidation:
    def test_empty_justification_is_rejected(self):
        payload = {
            "schema": "repro-analysis-baseline/1",
            "entries": [
                {"rule": "r", "path": "p", "key": "k", "justification": "   "}
            ],
        }
        with pytest.raises(BaselineError, match="justification"):
            Baseline.from_dict(payload)

    def test_missing_field_is_rejected(self):
        payload = {
            "schema": "repro-analysis-baseline/1",
            "entries": [{"rule": "r", "path": "p", "justification": "y"}],
        }
        with pytest.raises(BaselineError, match="key"):
            Baseline.from_dict(payload)

    def test_wrong_schema_is_rejected(self):
        with pytest.raises(BaselineError, match="schema"):
            Baseline.from_dict({"schema": "something-else/9", "entries": []})

    def test_corrupt_json_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            Baseline.load(path)

    def test_from_findings_dedupes_identical_keys(self):
        finding = make_finding("r", "p.py", 3, "msg", key="k")
        twin = make_finding("r", "p.py", 9, "other msg", key="k")
        baseline = Baseline.from_findings([finding, twin], justification="j")
        assert len(baseline.entries) == 1


class TestCliExitCodes:
    def write_tree(self, tmp_path, source):
        root = tmp_path / "src"
        root.mkdir()
        (root / "store.py").write_text(source, encoding="utf-8")
        return root

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = self.write_tree(tmp_path, "x = 1\n")
        report = tmp_path / "report.json"
        code = main(
            ["--root", str(root), "--baseline", str(tmp_path / "b.json"),
             "--report", str(report)]
        )
        assert code == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["ok"] is True
        assert "OK — no new findings" in capsys.readouterr().out

    def test_violation_exits_one_and_writes_report(self, tmp_path, capsys):
        root = self.write_tree(tmp_path, UNLOCKED)
        report = tmp_path / "report.json"
        code = main(
            ["--root", str(root), "--baseline", str(tmp_path / "b.json"),
             "--report", str(report)]
        )
        assert code == 1
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["ok"] is False
        assert payload["counts"]["new"] == 1
        assert payload["findings"][0]["rule"] == "lock.locked-call"
        assert "FAIL" in capsys.readouterr().out

    def test_write_baseline_then_rerun_is_green(self, tmp_path, capsys):
        root = self.write_tree(tmp_path, UNLOCKED)
        baseline = tmp_path / "b.json"
        args = ["--root", str(root), "--baseline", str(baseline),
                "--report", str(tmp_path / "report.json")]
        assert main(args + ["--write-baseline"]) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["entries"][0]["justification"].startswith("TODO")
        capsys.readouterr()
        assert main(args) == 0
        assert "baselined finding(s)" in capsys.readouterr().out

    def test_syntax_error_fails_the_gate(self, tmp_path):
        root = self.write_tree(tmp_path, "def broken(:\n")
        code = main(
            ["--root", str(root), "--baseline", str(tmp_path / "b.json"),
             "--report", str(tmp_path / "report.json")]
        )
        assert code == 1

    def test_missing_root_exits_two(self, tmp_path):
        code = main(["--root", str(tmp_path / "absent")])
        assert code == 2

    def test_bad_baseline_exits_two(self, tmp_path):
        root = self.write_tree(tmp_path, "x = 1\n")
        bad = tmp_path / "b.json"
        bad.write_text('{"schema": "wrong/1"}', encoding="utf-8")
        code = main(["--root", str(root), "--baseline", str(bad)])
        assert code == 2
