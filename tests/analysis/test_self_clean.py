"""The shipped tree must be clean against the committed baseline.

This is the same gate CI runs (``make analyze``) expressed as a test, so a
plain ``pytest`` run catches lock/async/fault/obs regressions without
waiting for the analyze job.
"""

from pathlib import Path

from repro.analysis.baseline import DEFAULT_BASELINE
from repro.analysis.runner import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_has_no_new_findings():
    report = run_analysis(
        REPO_ROOT / "src", baseline_path=REPO_ROOT / DEFAULT_BASELINE
    )
    assert report.files_scanned > 40, "analyzer saw suspiciously few files"
    assert report.ok, "new findings:\n" + "\n".join(
        f.render() for f in report.new
    )


def test_committed_baseline_has_no_stale_entries():
    report = run_analysis(
        REPO_ROOT / "src", baseline_path=REPO_ROOT / DEFAULT_BASELINE
    )
    assert report.stale == [], (
        "baseline entries whose findings are fixed — delete them: "
        + ", ".join(f"{e.rule} @ {e.path}" for e in report.stale)
    )


def test_all_four_checkers_ran():
    report = run_analysis(REPO_ROOT / "src")
    assert set(report.checkers) == {
        "lock-discipline",
        "asyncio-blocking",
        "fault-coverage",
        "obs-hygiene",
    }
