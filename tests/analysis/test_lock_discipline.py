"""Fixture-driven positive/negative cases for the lock-discipline checker."""

from pathlib import Path

from repro.analysis import Project, analyze_project
from repro.analysis.guarded import GuardedAttr, parse_annotations
from repro.analysis.lock_discipline import LockDisciplineChecker

GUARDS = (
    GuardedAttr("Store", "_items", "_lock"),
    GuardedAttr("Store", "hits", "_lock"),
    GuardedAttr("_Job", "finished", "drive_lock", mode="receiver", module="svc.py"),
)


def run(source: str, path: str = "svc.py"):
    project = Project.from_sources({path: source})
    return LockDisciplineChecker(GUARDS).run(project)


class TestGuardedAttr:
    def test_unguarded_write_is_flagged(self):
        findings = run(
            "class Store:\n"
            "    def add(self, x):\n"
            "        self._items.append(x)\n"
        )
        assert [f.rule for f in findings] == ["lock.guarded-attr"]
        assert findings[0].line == 3
        assert "_lock" in findings[0].message

    def test_access_under_lock_is_clean(self):
        findings = run(
            "class Store:\n"
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
            "            self.hits += 1\n"
        )
        assert findings == []

    def test_lock_scope_ends_with_the_with_block(self):
        findings = run(
            "class Store:\n"
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
            "        self.hits += 1\n"
        )
        assert [f.rule for f in findings] == ["lock.guarded-attr"]
        assert findings[0].line == 5

    def test_init_is_exempt(self):
        findings = run(
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._items = []\n"
            "        self.hits = 0\n"
        )
        assert findings == []

    def test_locked_suffix_method_is_exempt(self):
        findings = run(
            "class Store:\n"
            "    def _add_locked(self, x):\n"
            "        self._items.append(x)\n"
        )
        assert findings == []

    def test_wrong_lock_does_not_satisfy_the_guard(self):
        findings = run(
            "class Store:\n"
            "    def add(self, x):\n"
            "        with self._other_lock:\n"
            "            self._items.append(x)\n"
        )
        assert [f.rule for f in findings] == ["lock.guarded-attr"]

    def test_access_inside_except_handler_is_seen(self):
        findings = run(
            "class Store:\n"
            "    def add(self, x):\n"
            "        try:\n"
            "            pass\n"
            "        except ValueError:\n"
            "            self.hits += 1\n"
        )
        assert [f.rule for f in findings] == ["lock.guarded-attr"]

    def test_access_inside_comprehension_is_seen(self):
        findings = run(
            "class Store:\n"
            "    def snapshot(self):\n"
            "        return [x for x in self._items]\n"
        )
        assert [f.rule for f in findings] == ["lock.guarded-attr"]

    def test_nested_function_does_not_inherit_the_lock_scope(self):
        # The nested def runs later, when the with-block is long gone.
        findings = run(
            "class Store:\n"
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                return self._items\n"
            "            return later\n"
        )
        assert [f.rule for f in findings] == ["lock.guarded-attr"]

    def test_other_classes_are_not_checked(self):
        findings = run(
            "class Unrelated:\n"
            "    def add(self, x):\n"
            "        self._items.append(x)\n"
        )
        assert findings == []


class TestLockedCallRule:
    def test_locked_call_outside_lock_is_flagged(self):
        findings = run(
            "class Store:\n"
            "    def record(self, x):\n"
            "        self._absorb_locked(x)\n"
        )
        assert [f.rule for f in findings] == ["lock.locked-call"]

    def test_locked_call_under_lock_is_clean(self):
        findings = run(
            "class Store:\n"
            "    def record(self, x):\n"
            "        with self._mutex:\n"
            "            self._absorb_locked(x)\n"
        )
        assert findings == []

    def test_locked_call_from_locked_method_is_clean(self):
        findings = run(
            "class Store:\n"
            "    def _outer_locked(self, x):\n"
            "        self._absorb_locked(x)\n"
        )
        assert findings == []


class TestReceiverMode:
    def test_receiver_attr_outside_lock_is_flagged(self):
        findings = run(
            "class Driver:\n"
            "    def drive(self, job):\n"
            "        job.finished = True\n"
        )
        assert [f.rule for f in findings] == ["lock.guarded-attr"]

    def test_receiver_attr_under_drive_lock_is_clean(self):
        findings = run(
            "class Driver:\n"
            "    def drive(self, job):\n"
            "        with job.drive_lock:\n"
            "            job.finished = True\n"
        )
        assert findings == []

    def test_receiver_guard_is_scoped_to_its_module(self):
        findings = run(
            "class Elsewhere:\n"
            "    def read(self, result):\n"
            "        return result.finished\n",
            path="other.py",
        )
        assert findings == []


class TestAnnotations:
    def test_guarded_by_comment_extends_the_registry(self):
        source = (
            "class Fresh:\n"
            "    def __init__(self):\n"
            "        self._cache = {}  # guarded-by: _cache_lock\n"
            "    def get(self, k):\n"
            "        return self._cache.get(k)\n"
        )
        project = Project.from_sources({"fresh.py": source})
        guards = parse_annotations(project.modules[0])
        assert guards == [GuardedAttr("Fresh", "_cache", "_cache_lock")]
        findings = LockDisciplineChecker(()).run(project)
        assert [f.rule for f in findings] == ["lock.guarded-attr"]
        assert "Fresh.get" in findings[0].message

    def test_registry_record_without_mutex_is_caught(self):
        # The acceptance criterion: resurrect the PR 8 bug by deleting the
        # RLock guard from ScheduleRegistry.record() and the checkers must go
        # red on the locked-helper calls it leaves behind.
        registry_py = (
            Path(__file__).resolve().parents[2] / "src/repro/serving/registry.py"
        )
        real = registry_py.read_text(encoding="utf-8")
        broken = real.replace(
            "        with self._mutex:\n"
            "            self._ensure_key_indexed_locked(entry.fingerprint)\n",
            "        if True:  # lock dropped\n"
            "            self._ensure_key_indexed_locked(entry.fingerprint)\n",
        )
        assert broken != real, "registry.record() no longer matches the fixture"
        report = analyze_project(
            Project.from_sources({"repro/serving/registry.py": broken}),
            checkers=[LockDisciplineChecker()],
        )
        assert any(f.rule == "lock.locked-call" for f in report.new)
        # the shipped source, by contrast, is clean
        clean = analyze_project(
            Project.from_sources({"repro/serving/registry.py": real}),
            checkers=[LockDisciplineChecker()],
        )
        assert [f for f in clean.new if f.rule.startswith("lock.")] == []
