"""Positive/negative fixtures for the asyncio blocking-call checker."""

from repro.analysis import Project
from repro.analysis.async_blocking import AsyncBlockingChecker


def run(source: str, path: str = "server.py"):
    project = Project.from_sources({path: source})
    return AsyncBlockingChecker().run(project)


class TestBlockingCalls:
    def test_time_sleep_in_async_def_is_flagged(self):
        findings = run(
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )
        assert [f.rule for f in findings] == ["async.blocking-call"]
        assert findings[0].line == 3

    def test_asyncio_sleep_is_clean(self):
        findings = run(
            "import asyncio\n"
            "async def handler():\n"
            "    await asyncio.sleep(1)\n"
        )
        assert findings == []

    def test_time_sleep_in_sync_def_is_clean(self):
        findings = run(
            "import time\n"
            "def worker():\n"
            "    time.sleep(1)\n"
        )
        assert findings == []

    def test_open_in_async_def_is_flagged(self):
        findings = run(
            "async def handler(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
        )
        assert any(f.rule == "async.blocking-call" for f in findings)

    def test_path_read_text_is_flagged(self):
        findings = run(
            "async def handler(path):\n"
            "    return path.read_text()\n"
        )
        assert [f.rule for f in findings] == ["async.blocking-call"]

    def test_nested_sync_def_body_is_not_the_event_loop(self):
        # A sync helper defined inside an async handler runs wherever it is
        # called (typically a worker thread), so its body is exempt.
        findings = run(
            "import time\n"
            "async def handler(loop):\n"
            "    def blocking_part():\n"
            "        time.sleep(1)\n"
            "    await loop.run_in_executor(None, blocking_part)\n"
        )
        assert findings == []


class TestLocksAndSockets:
    def test_sync_lock_acquire_is_flagged(self):
        findings = run(
            "async def handler(self):\n"
            "    self._lock.acquire()\n"
        )
        assert [f.rule for f in findings] == ["async.blocking-call"]

    def test_nonblocking_acquire_is_clean(self):
        findings = run(
            "async def handler(self):\n"
            "    if not self._lock.acquire(blocking=False):\n"
            "        return None\n"
        )
        assert findings == []

    def test_sync_with_lock_is_flagged(self):
        findings = run(
            "async def handler(self):\n"
            "    with self._quota_lock:\n"
            "        self._quota -= 1\n"
        )
        assert [f.rule for f in findings] == ["async.blocking-call"]

    def test_non_lock_context_manager_is_clean(self):
        findings = run(
            "async def handler(self):\n"
            "    with self._span_factory():\n"
            "        pass\n"
        )
        assert findings == []

    def test_socket_recv_is_flagged(self):
        findings = run(
            "async def handler(sock):\n"
            "    return sock.recv(4096)\n"
        )
        assert [f.rule for f in findings] == ["async.blocking-call"]

    def test_queue_get_is_flagged(self):
        findings = run(
            "async def handler(queue):\n"
            "    return queue.get()\n"
        )
        assert [f.rule for f in findings] == ["async.blocking-call"]

    def test_direct_service_call_is_flagged(self):
        findings = run(
            "async def handler(service, req):\n"
            "    return service.submit(req)\n"
        )
        assert [f.rule for f in findings] == ["async.blocking-call"]
