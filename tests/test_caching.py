"""Unit tests for the shared hot-path memoisation caches (`repro.caching`).

The contract under test: a cache hit returns the *identical* stored object,
keys embed everything that must invalidate (workload identity, target tiling
depths, schedule signature), counters account every lookup, and the
``legacy_hot_path`` switch bypasses memoisation entirely.
"""

import numpy as np
import pytest

from repro.caching import (
    MemoCache,
    cache_stats,
    cached_lowering,
    cached_sketches,
    cached_sketches_for_target,
    clear_caches,
    fingerprint_stats,
    hot_path_enabled,
    legacy_hot_path,
    lowering_cache,
    reset_cache_stats,
    sketch_cache,
)
from repro.hardware.target import cpu_target, gpu_target
from repro.tensor.dag import structural_fingerprint
from repro.tensor.lowering import lower_schedule
from repro.tensor.sampler import sample_schedule
from repro.tensor.workloads import gemm


@pytest.fixture(autouse=True)
def _isolated_caches():
    clear_caches()
    reset_cache_stats()
    yield
    clear_caches()
    reset_cache_stats()


class TestMemoCache:
    def test_hit_returns_identical_object(self):
        cache = MemoCache("test", maxsize=4)
        first = cache.get_or_create("k", lambda: object())
        second = cache.get_or_create("k", lambda: object())
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_counts(self):
        cache = MemoCache("test", maxsize=2)
        for key in ("a", "b", "c"):
            cache.get_or_create(key, object)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert "a" not in cache and "c" in cache

    def test_invalidate(self):
        cache = MemoCache("test")
        value = cache.get_or_create("k", object)
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert cache.get_or_create("k", object) is not value

    def test_legacy_mode_bypasses(self):
        cache = MemoCache("test")
        with legacy_hot_path():
            assert not hot_path_enabled()
            first = cache.get_or_create("k", object)
            second = cache.get_or_create("k", object)
        assert hot_path_enabled()
        assert first is not second
        assert len(cache) == 0 and cache.stats.total == 0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MemoCache("test", maxsize=0)

    def test_on_evict_runs_for_lru_eviction_invalidate_and_clear(self):
        disposed = []
        cache = MemoCache("test", maxsize=2, on_evict=disposed.append)
        for key in ("a", "b", "c"):
            cache.get_or_create(key, lambda key=key: f"value-{key}")
        assert disposed == ["value-a"]  # LRU eviction
        cache.invalidate("b")
        assert disposed == ["value-a", "value-b"]
        cache.clear()
        assert disposed == ["value-a", "value-b", "value-c"]

    def test_resource_cache_is_not_bypassed_by_legacy_mode(self):
        # legacy_bypass=False caches hold *resources* (open shard handles):
        # bypassing them under legacy_hot_path would leak one per lookup.
        disposed = []
        cache = MemoCache(
            "handles", maxsize=4, on_evict=disposed.append, legacy_bypass=False
        )
        with legacy_hot_path():
            first = cache.get_or_create("k", object)
            second = cache.get_or_create("k", object)
        assert second is first
        assert len(cache) == 1 and disposed == []


class TestCachedSketches:
    def test_hit_returns_identical_list(self):
        dag = gemm(64, 64, 64)
        first = cached_sketches(dag, 4, 2)
        assert cached_sketches(dag, 4, 2) is first
        assert sketch_cache.stats.misses == 1
        assert sketch_cache.stats.hits == 1

    def test_target_change_invalidates(self):
        """CPU and GPU tiling depths must never share a sketch family."""
        dag = gemm(64, 64, 64)
        on_cpu = cached_sketches_for_target(dag, cpu_target())
        on_gpu = cached_sketches_for_target(dag, gpu_target())
        assert on_cpu is not on_gpu
        assert on_cpu[0].spatial_levels == 4 and on_gpu[0].spatial_levels == 5
        # Returning to the first target serves the original object again.
        assert cached_sketches_for_target(dag, cpu_target()) is on_cpu

    def test_same_structure_different_name_does_not_share(self):
        plain = gemm(64, 64, 64)
        renamed = gemm(64, 64, 64, name="renamed")
        assert structural_fingerprint(plain) == structural_fingerprint(renamed)
        assert cached_sketches(plain) is not cached_sketches(renamed)
        # A schedule built from the cached sketches must keep its own
        # workload name (measurement statistics key off it).
        assert cached_sketches(renamed)[0].dag.name == "renamed"

    def test_clear_caches_regenerates(self):
        dag = gemm(64, 64, 64)
        first = cached_sketches(dag)
        clear_caches()
        assert cached_sketches(dag) is not first


class TestCachedLowering:
    def test_hit_returns_identical_text(self, rng):
        dag = gemm(64, 64, 64)
        schedule = sample_schedule(cached_sketches(dag)[0], rng)
        first = cached_lowering(schedule)
        assert cached_lowering(schedule) is first
        assert first == lower_schedule(schedule)
        assert lowering_cache.stats.misses == 1
        assert lowering_cache.stats.hits == 1

    def test_same_name_different_structure_not_shared(self, rng):
        """Same display name + same knobs must not collide across structures.

        ``Schedule.signature()`` keys on the display name only; the lowering
        cache additionally keys on the structural fingerprint so a workload
        with an epilogue never serves the program text of its epilogue-free
        namesake.
        """
        from repro.tensor.schedule import Schedule

        bare = gemm(64, 64, 64, bias=False, name="twin")
        fused = gemm(64, 64, 64, bias=True, name="twin")
        bare_sketch = next(s for s in cached_sketches(bare) if s.key == "tiling")
        fused_sketch = next(s for s in cached_sketches(fused) if s.key == "tiling")
        first = sample_schedule(bare_sketch, rng)
        twin = Schedule(
            sketch=fused_sketch,
            tile_sizes=[list(sizes) for sizes in first.tile_sizes],
            compute_at_index=first.compute_at_index,
            num_parallel=first.num_parallel,
            unroll_index=first.unroll_index,
            unroll_depths=first.unroll_depths,
        )
        assert first.signature() == twin.signature()
        assert cached_lowering(first) != cached_lowering(twin)
        assert lowering_cache.stats.misses == 2

    def test_distinct_schedules_distinct_entries(self):
        dag = gemm(64, 64, 64)
        sketch = cached_sketches(dag)[0]
        fixed_rng = np.random.default_rng(1)
        schedules = [sample_schedule(sketch, fixed_rng) for _ in range(16)]
        for schedule in schedules:
            cached_lowering(schedule)
        unique = len({s.signature() for s in schedules})
        assert lowering_cache.stats.misses == unique
        assert lowering_cache.stats.hits == len(schedules) - unique


class TestFingerprintCounters:
    def test_first_computation_is_a_miss_then_hits(self):
        dag = gemm(96, 96, 96)
        before = (fingerprint_stats.hits, fingerprint_stats.misses)
        structural_fingerprint(dag)
        structural_fingerprint(dag)
        structural_fingerprint(dag)
        assert fingerprint_stats.misses == before[1] + 1
        assert fingerprint_stats.hits == before[0] + 2

    def test_snapshot_shape(self):
        stats = cache_stats()
        assert set(stats) == {"sketches", "lowering", "fingerprint"}
        for entry in stats.values():
            assert {"hits", "misses", "evictions", "hit_rate"} <= set(entry)
