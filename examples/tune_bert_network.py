#!/usr/bin/env python
"""End-to-end neural network tuning: BERT-base with HARL vs. Ansor.

Run with::

    python examples/tune_bert_network.py [--trials 300] [--network bert]

The network is decomposed into its distinct subgraphs (10 for BERT); both
schedulers allocate the same total measurement budget across subgraphs —
Ansor with its greedy gradient-based task scheduler, HARL with the
non-stationary subgraph MAB — and the script prints a Table 4 style
per-subgraph breakdown plus the end-to-end comparison.
"""

from __future__ import annotations

import argparse

from repro import HARLConfig
from repro.experiments.cache import build_network
from repro.experiments.reporting import format_table
from repro.experiments.runner import compare_on_network
from repro.hardware.target import cpu_target, gpu_target


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", choices=("bert", "resnet50", "mobilenet_v2"), default="bert")
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--trials", type=int, default=300, help="total trial budget per scheduler")
    parser.add_argument("--gpu", action="store_true", help="use the simulated GPU target")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    network = build_network(args.network, batch_size=args.batch)
    target = gpu_target() if args.gpu else cpu_target()
    print(f"Tuning {network.name} ({len(network)} distinct subgraphs, "
          f"{network.total_flops / 1e9:.2f} GFLOPs) on {target.name}, "
          f"{args.trials} trials per scheduler...")

    comparison = compare_on_network(
        network,
        n_trials=args.trials,
        target=target,
        config=HARLConfig.scaled(0.125),
        seed=args.seed,
        schedulers=("ansor", "harl"),
    )
    harl = comparison.results["harl"]
    ansor = comparison.results["ansor"]

    contributions = harl.task_contributions()
    rows = []
    for name in sorted(contributions, key=contributions.get, reverse=True):
        harl_task = harl.task_results[name]
        ansor_task = ansor.task_results[name]
        speedup = (
            ansor_task.best_latency / harl_task.best_latency
            if harl_task.best_latency > 0
            else 0.0
        )
        rows.append([
            name,
            f"{contributions[name]:.1%}",
            harl.allocations.get(name, 0),
            ansor.allocations.get(name, 0),
            f"{speedup:.2f}x",
        ])

    print()
    print(format_table(
        ["subgraph", "exec-time share (HARL)", "HARL trials", "Ansor trials", "HARL speedup"],
        rows,
        title="Per-subgraph breakdown (Table 4 style)",
    ))

    print()
    print(f"End-to-end estimated latency:  Ansor {ansor.best_latency * 1e3:.3f} ms   "
          f"HARL {harl.best_latency * 1e3:.3f} ms")
    print(f"HARL end-to-end speedup: {ansor.best_latency / harl.best_latency:.2f}x "
          f"(paper reports ~1.08x on CPU, ~1.09x on GPU at full budgets)")


if __name__ == "__main__":
    main()
