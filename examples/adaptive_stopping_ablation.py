#!/usr/bin/env python
"""Ablation of HARL's adaptive-stopping module (the Fig. 7 experiment).

Run with::

    python examples/adaptive_stopping_ablation.py [--trials 120]

Three schedulers tune the same large GEMM under identical budgets:

* ``ansor``            — evolutionary baseline,
* ``hierarchical-rl``  — HARL with fixed-length schedule tracks,
* ``harl``             — full HARL with adaptive stopping.

The script prints the convergence checkpoints (Fig. 7a) and the critical-step
statistics of fixed-length vs. adaptive tracks (Fig. 7b).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import HARLConfig
from repro.experiments.reporting import format_table
from repro.experiments.runner import compare_on_operator
from repro.tensor.workloads import gemm

SCHEDULERS = ("ansor", "hierarchical-rl", "harl")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dag = gemm(1024, 1024, 1024)
    print(f"Running the Fig. 7 ablation on {dag.name} with {args.trials} trials per scheduler...")
    comparison = compare_on_operator(
        dag,
        n_trials=args.trials,
        config=HARLConfig.scaled(0.25),
        seed=args.seed,
        schedulers=SCHEDULERS,
    )
    results = comparison.results

    # --- Fig. 7(a): convergence checkpoints --------------------------------
    budget = max(r.trials_used for r in results.values())
    best = min(r.best_latency for r in results.values())
    rows = []
    for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
        trial = max(1, int(budget * fraction))
        row = [trial]
        for name in SCHEDULERS:
            latency = results[name].best_latency_at(trial)
            row.append(best / latency if np.isfinite(latency) else 0.0)
        rows.append(row)
    print()
    print(format_table(["trials"] + list(SCHEDULERS), rows,
                       title="Fig. 7(a) style: normalized performance vs. trials"))

    # --- Fig. 7(b): critical-step statistics -------------------------------
    adaptive = np.asarray(results["harl"].extras["critical_positions"])
    fixed = np.asarray(results["hierarchical-rl"].extras["critical_positions"])
    rows = [
        ["mean critical position", float(np.mean(fixed)), float(np.mean(adaptive))],
        ["share of tracks peaking in last 10%", float(np.mean(fixed >= 0.9)), float(np.mean(adaptive >= 0.9))],
        ["share of tracks peaking in first 40%", float(np.mean(fixed <= 0.4)), float(np.mean(adaptive <= 0.4))],
    ]
    print()
    print(format_table(["statistic", "fixed-length", "adaptive-stopping"], rows,
                       title="Fig. 7(b) style: wasted steps per schedule track"))


if __name__ == "__main__":
    main()
