"""End-to-end network tuning demo: cross-network reuse over one registry.

The script walks the network layer of the serving stack:

1. **Cold end-to-end tuning** — ResNet-50 is split into its weighted
   subgraphs and tuned through the shared tuning service; the round budget
   is allocated across tasks by HARL's SW-UCB bandit over the Eq. 3
   gradient reward, and the run prints its ``f(S)`` trajectory and
   per-task allocation table.
2. **Cross-network warm starts** — MobileNet-V2 is tuned against the *same*
   registry: its convolution tasks borrow the registered ResNet schedules
   of their nearest structural relatives (watch the ``warm:resnet_…``
   provenance column) and reach a good ``f(S)`` in far fewer trials.
3. **Registry hits** — ResNet-50 is submitted again; every task is answered
   in O(1) from the registry with zero measurement trials.

Run it (optionally with a persistent registry directory):

    PYTHONPATH=src python examples/network_demo.py
    PYTHONPATH=src python examples/network_demo.py --registry /tmp/registry
"""

from __future__ import annotations

import argparse

from repro.core.config import HARLConfig
from repro.experiments.network_runner import NetworkTuner
from repro.networks.mobilenet import build_mobilenet_v2
from repro.networks.resnet import build_resnet50
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import TuningService


def tune(network, registry, config, seed, trials, policy):
    service = TuningService(registry=registry, config=config, seed=seed,
                            max_warm_start=2)
    report = NetworkTuner(network, service, policy=policy).tune(n_trials=trials)
    print(report.format())
    print()
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--registry", default=None,
                        help="persistent registry directory (default: in-memory)")
    parser.add_argument("--trials", type=int, default=160,
                        help="measurement budget per network")
    parser.add_argument("--policy", choices=("bandit", "gradient"),
                        default="bandit")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    registry = ScheduleRegistry(args.registry)
    config = HARLConfig.scaled(0.05)

    print("=== 1. ResNet-50, cold: every task is tuned from scratch ===\n")
    resnet = tune(build_resnet50(), registry, config, args.seed,
                  args.trials, args.policy)

    print("=== 2. MobileNet-V2 on the same registry: conv tasks warm-start "
          "from the ResNet entries ===\n")
    mobilenet = tune(build_mobilenet_v2(), registry, config, args.seed + 1,
                     args.trials, args.policy)
    print(f"{mobilenet.warm_started_tasks}/{len(mobilenet.tasks)} MobileNet "
          f"tasks were seeded from registered donors\n")

    print("=== 3. ResNet-50 again: answered from the registry, zero trials ===\n")
    again = tune(build_resnet50(), registry, config, args.seed + 2,
                 args.trials, args.policy)
    print(f"second ResNet pass: {again.registry_hits} registry hits, "
          f"{again.trials_used} trials, f(S) unchanged at "
          f"{again.final_latency * 1e3:.3f} ms")

    stats = registry.stats()
    print(f"\nregistry: {stats['entries']} entries, "
          f"{stats['shard_files']} shard files, targets={stats['targets']}")
    registry.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
