#!/usr/bin/env python
"""Head-to-head comparison of HARL against the Ansor baseline on one operator.

Run with::

    python examples/compare_operator_tuning.py [--op GEMM-L] [--trials 100]

Both schedulers receive the same measurement-trial budget on the same
simulated hardware; the script prints the Fig. 5 / Fig. 6 metrics (normalized
performance and normalized search time) for the chosen Table 6 operator class.
"""

from __future__ import annotations

import argparse

from repro import HARLConfig
from repro.experiments.operator_suite import OPERATOR_CLASSES, representative_dag
from repro.experiments.reporting import format_table
from repro.experiments.runner import compare_on_operator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--op", choices=OPERATOR_CLASSES, default="GEMM-L",
                        help="Table 6 operator class to tune")
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--trials", type=int, default=100, help="trial budget per scheduler")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--with-ablation", action="store_true",
                        help="also run the fixed-length Hierarchical-RL ablation")
    args = parser.parse_args()

    schedulers = ("ansor", "harl") + (("hierarchical-rl",) if args.with_ablation else ())
    dag = representative_dag(args.op, batch=args.batch)
    print(f"Comparing {', '.join(schedulers)} on {dag.name} "
          f"({dag.flops / 1e9:.2f} GFLOPs), {args.trials} trials each...")

    comparison = compare_on_operator(
        dag,
        n_trials=args.trials,
        config=HARLConfig.scaled(0.25),
        seed=args.seed,
        schedulers=schedulers,
    )

    perf = comparison.normalized_performance()
    times = comparison.normalized_search_time(baseline="ansor")
    rows = []
    for name in schedulers:
        result = comparison.results[name]
        rows.append([
            name,
            result.best_latency * 1e3,
            result.best_throughput / 1e12,
            perf[name],
            times[name],
            result.trials_used,
        ])

    print()
    print(format_table(
        ["scheduler", "best latency (ms)", "TFLOP/s", "norm. performance", "norm. search time", "trials"],
        rows,
    ))

    harl = comparison.results["harl"]
    ansor = comparison.results["ansor"]
    print()
    print(f"HARL speedup over Ansor: {ansor.best_latency / harl.best_latency:.2f}x "
          f"(paper reports 1.06-1.22x on operators)")


if __name__ == "__main__":
    main()
