"""Serving demo: two clients hit the multi-tenant tuning service.

The script walks the three reuse mechanisms of the serving subsystem:

1. **Coalescing** — both clients submit the *same* GEMM (under different
   display names); the service runs exactly one tuning job and both handles
   receive its result.
2. **Registry hits** — a second batch re-requests the tuned workloads; every
   answer comes straight from the schedule registry with zero measurement
   trials.
3. **Transfer warm starts** — a *similar* (not identical) GEMM borrows the
   registered best schedule of its nearest structural relative as a
   measurement-seeded warm start.

Run it (optionally with a persistent registry directory):

    PYTHONPATH=src python examples/serving_demo.py
    PYTHONPATH=src python examples/serving_demo.py --registry /tmp/registry
"""

from __future__ import annotations

import argparse

from repro.core.config import HARLConfig
from repro.experiments.reporting import format_table
from repro.serving.registry import ScheduleRegistry
from repro.serving.service import TuningRequest, TuningService
from repro.tensor.workloads import conv1d, gemm


def show(title, handles):
    rows = [
        [h.request.dag.name, h.request.tenant, h.source,
         h.result.best_latency * 1e6, h.result.trials_used]
        for h in handles
    ]
    print(format_table(
        ["workload", "tenant", "source", "best latency (us)", "trials"],
        rows, title=title,
    ))
    print()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--registry", default=None,
                        help="persistent registry directory (default: in-memory)")
    parser.add_argument("--trials", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    registry = ScheduleRegistry(args.registry)
    service = TuningService(
        registry=registry,
        config=HARLConfig.scaled(0.125),
        seed=args.seed,
    )

    # --- batch 1: duplicate + novel workloads from two tenants ----------- #
    batch1 = [
        TuningRequest(dag=gemm(128, 128, 128, name="alice_gemm"),
                      n_trials=args.trials, tenant="alice"),
        TuningRequest(dag=gemm(128, 128, 128, name="bob_gemm"),
                      n_trials=args.trials, tenant="bob"),    # coalesces
        TuningRequest(dag=conv1d(128, 32, 64, 3, 1, 1),
                      n_trials=args.trials, tenant="alice"),  # novel
    ]
    show("batch 1 — duplicates coalesce onto one job", service.process(batch1))
    print(f"jobs created: {service.jobs_created} "
          f"(coalesced requests: {service.coalesced_requests})\n")

    # --- batch 2: identical re-requests are O(1) registry hits ----------- #
    batch2 = [
        TuningRequest(dag=gemm(128, 128, 128, name="carol_gemm"),
                      n_trials=args.trials, tenant="carol"),
        TuningRequest(dag=conv1d(128, 32, 64, 3, 1, 1),
                      n_trials=args.trials, tenant="bob"),
    ]
    show("batch 2 — answered from the registry, zero trials", service.process(batch2))

    # --- batch 3: a similar workload transfers a warm start -------------- #
    relative = gemm(192, 128, 128, name="alice_gemm_big")
    neighbors = registry.nearest(relative, service.target, k=1)
    if neighbors:
        distance, entry = neighbors[0]
        print(f"nearest relative of {relative.name}: {entry.workload} "
              f"(embedding distance {distance:.2f}) — transferring its schedule\n")
    show("batch 3 — warm-started from the nearest relative",
         service.process([TuningRequest(dag=relative, n_trials=args.trials,
                                        tenant="alice")]))

    stats = registry.stats()
    print(f"registry: {stats['entries']} entries, "
          f"{stats['shard_files']} shard files, targets={stats['targets']}")
    registry.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
