#!/usr/bin/env python
"""Quickstart: tune a single GEMM operator with HARL.

Run with::

    python examples/quickstart.py [--trials 120]

The script builds a 512x512x512 matrix-multiplication compute DAG, tunes it
with the HARL auto-scheduler on the simulated 32-core CPU target, and prints
the best schedule it found together with the tuning progress.

``--num-workers 4`` measures each candidate batch on a worker pool (results
are identical for the same seed, see docs/architecture.md) and
``--records-out logs/quickstart.jsonl`` streams every measurement to an
append-only log that later runs can resume from.
"""

from __future__ import annotations

import argparse

from repro import HARLConfig, HARLScheduler, ParallelMeasurer, RecordStore, cpu_target, gemm


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=120, help="measurement trial budget")
    parser.add_argument("--m", type=int, default=512)
    parser.add_argument("--k", type=int, default=512)
    parser.add_argument("--n", type=int, default=512)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--num-workers", type=int, default=1,
                        help="measurement pool size (1 = serial)")
    parser.add_argument("--records-out", default=None,
                        help="append every measurement to this JSONL log")
    args = parser.parse_args()

    dag = gemm(args.m, args.k, args.n)
    target = cpu_target()
    # A quarter of the paper-scale episode width keeps the example snappy.
    config = HARLConfig.scaled(0.25)

    measurer = None
    record_store = RecordStore(args.records_out) if args.records_out else None
    if args.num_workers > 1:
        measurer = ParallelMeasurer(
            target,
            num_workers=args.num_workers,
            min_repeat_seconds=config.min_repeat_seconds,
            seed=args.seed,
            record_store=record_store,
        )
    scheduler = HARLScheduler(
        target=target, config=config, seed=args.seed,
        measurer=measurer, record_store=record_store,
    )

    print(f"Tuning {dag.name} ({dag.flops / 1e9:.2f} GFLOPs) on {target.name} "
          f"with {args.trials} measurement trials...")
    result = scheduler.tune(dag, n_trials=args.trials)

    print()
    print(f"Best latency     : {result.best_latency * 1e3:.3f} ms")
    print(f"Best throughput  : {result.best_throughput / 1e12:.2f} TFLOP/s")
    print(f"Trials used      : {result.trials_used}")
    print(f"Schedules visited: {result.search_steps}")
    print(f"Best schedule    : {result.best_schedule}")

    print()
    print("Tuning progress (trial -> best latency in ms):")
    checkpoints = {1, args.trials // 4, args.trials // 2, 3 * args.trials // 4, result.trials_used}
    for trial, latency in result.history:
        if trial in checkpoints:
            print(f"  trial {trial:5d}: {latency * 1e3:8.3f} ms")

    if record_store is not None:
        record_store.close()
        print(f"\nrecords written to {args.records_out} "
              f"({result.trials_used} measurements this run)")


if __name__ == "__main__":
    main()
